//! Message-passing transport between cache peers, over `diesel-net`.
//!
//! The real DIESEL uses Apache Thrift between clients ("Peers in the
//! task-grained distributed caching system also use Thrift to exchange
//! data", §5). This module provides the in-process equivalent: each
//! master client runs a [`PeerServer`] — a `diesel-net`
//! [`ThreadServer`] whose handler owns the node's chunk data — and
//! [`PeerHandle`]s are the "connections" other clients hold. Deadlines,
//! retries, fault injection and per-endpoint stats all come from
//! `diesel-net` middleware; this module only maps transport failures to
//! cache semantics ([`CacheError::NodeDown`] with the *correct* node id).
//!
//! Elastic membership rides the same channels: a resize copies each
//! moved chunk between peers with [`PeerHandle::fetch_resident`] (warm
//! handoff: memory-only, errors [`CacheError::NotResident`] instead of
//! touching the store) and [`PeerHandle::install`], then
//! [`PeerHandle::evict`]s the moved-out residency — the backing store is
//! only read for chunks no peer still holds (DESIGN.md §13).
//!
//! The shared-memory [`TaskCache`](crate::task_cache::TaskCache) remains
//! the fast path for single-process deployments; [`RpcCache`] composes
//! peer servers into the same one-hop read protocol over channels, and
//! the tests assert both give identical results.

use std::collections::HashMap;
use std::sync::Arc;

use diesel_chunk::{ChunkHeader, ChunkId};
use diesel_meta::recovery::chunk_object_key;
use diesel_meta::FileMeta;
use diesel_net::{
    Channel, Clock, Endpoint, EndpointMetrics, FaultChannel, FaultPolicy, Instrumented, Retry,
    RetryPolicy, Service, SystemClock, ThreadChannel, ThreadServer,
};
use diesel_obs::Registry;
use diesel_store::{Bytes, ObjectStore};

use crate::partition::ChunkPartition;
use crate::ring::HashRing;
use crate::task_cache::RebalanceReport;
use crate::{CacheError, Result};

/// A fetch request to a peer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PeerRequest {
    /// Read one file out of a chunk the peer owns.
    FetchFile(FileMeta),
    /// Fetch a whole chunk (used by recovering peers / chunk-wise
    /// reads); loads from the backing store if not resident.
    FetchChunk(ChunkId),
    /// Fetch a whole chunk **only if resident in memory** — the warm
    /// leg of a rebalance handoff. Never touches the backing store;
    /// replies [`CacheError::NotResident`] on a cold peer so the caller
    /// can fall back deliberately.
    FetchResident(ChunkId),
    /// Install chunk bytes shipped from a previous owner (the receive
    /// side of a warm handoff).
    Install(ChunkId, Bytes),
    /// Drop a moved-out chunk's residency after its handoff completes.
    Evict(ChunkId),
}

/// A peer's application-level reply (transport errors live in
/// [`diesel_net::NetError`], below this layer).
pub type PeerReply = Result<Bytes>;

/// A connection to one peer (clone per client; channels are MPMC).
#[derive(Clone)]
pub struct PeerHandle {
    node: usize,
    chan: Channel<PeerRequest, PeerReply>,
}

impl PeerHandle {
    /// Wrap an arbitrary channel (possibly layered with retry, fault
    /// injection or stats middleware) as a connection to `node`.
    pub fn new(node: usize, chan: Channel<PeerRequest, PeerReply>) -> Self {
        PeerHandle { node, chan }
    }

    /// The node this handle connects to.
    pub fn node(&self) -> usize {
        self.node
    }

    fn call(&self, req: PeerRequest) -> Result<Bytes> {
        match self.chan.call(req) {
            Ok(reply) => reply,
            Err(_) => Err(CacheError::NodeDown { node: self.node }),
        }
    }

    /// Fetch a file from the peer (one hop, blocking).
    pub fn fetch_file(&self, meta: &FileMeta) -> Result<Bytes> {
        self.call(PeerRequest::FetchFile(*meta))
    }

    /// Fetch a whole chunk from the peer.
    pub fn fetch_chunk(&self, chunk: ChunkId) -> Result<Bytes> {
        self.call(PeerRequest::FetchChunk(chunk))
    }

    /// Fetch a chunk only if the peer holds it in memory
    /// ([`CacheError::NotResident`] otherwise).
    pub fn fetch_resident(&self, chunk: ChunkId) -> Result<Bytes> {
        self.call(PeerRequest::FetchResident(chunk))
    }

    /// Ship chunk bytes into the peer's residency (warm handoff).
    pub fn install(&self, chunk: ChunkId, bytes: Bytes) -> Result<()> {
        self.call(PeerRequest::Install(chunk, bytes)).map(|_| ())
    }

    /// Drop the peer's residency of a moved-out chunk.
    pub fn evict(&self, chunk: ChunkId) -> Result<()> {
        self.call(PeerRequest::Evict(chunk)).map(|_| ())
    }
}

impl std::fmt::Debug for PeerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PeerHandle").field("node", &self.node).finish_non_exhaustive()
    }
}

struct PeerState<S> {
    node: usize,
    dataset: String,
    backing: Arc<S>,
    /// Memory budget for resident chunks; LRU-evicted past it on every
    /// insert path (store loads *and* shipped installs), mirroring
    /// `TaskCache`'s per-node `capacity_bytes_per_node`.
    capacity_bytes: u64,
    chunks: HashMap<ChunkId, (Bytes, u32)>, // bytes + header_len
    lru: std::collections::VecDeque<ChunkId>,
    resident_bytes: u64,
}

impl<S: ObjectStore> PeerState<S> {
    /// Make `chunk` resident under the byte budget. Replaces any
    /// existing residency of the same chunk, then LRU-evicts others
    /// until the new total fits (the incoming chunk itself is never
    /// the victim).
    fn insert_budgeted(&mut self, chunk: ChunkId, bytes: Bytes, header_len: u32) {
        self.evict(chunk);
        let size = bytes.len() as u64;
        while self.resident_bytes + size > self.capacity_bytes {
            let Some(victim) = self.lru.pop_front() else { break };
            if let Some((b, _)) = self.chunks.remove(&victim) {
                self.resident_bytes -= b.len() as u64;
            }
        }
        self.chunks.insert(chunk, (bytes, header_len));
        self.lru.push_back(chunk);
        self.resident_bytes += size;
    }

    /// Drop `chunk`'s residency (no-op when absent).
    fn evict(&mut self, chunk: ChunkId) {
        if let Some((b, _)) = self.chunks.remove(&chunk) {
            self.resident_bytes -= b.len() as u64;
            if let Some(pos) = self.lru.iter().position(|&c| c == chunk) {
                self.lru.remove(pos);
            }
        }
    }

    fn ensure_chunk(&mut self, chunk: ChunkId) -> Result<&(Bytes, u32)> {
        if !self.chunks.contains_key(&chunk) {
            let key = chunk_object_key(&self.dataset, chunk);
            let bytes = self.backing.get(&key).map_err(|er| CacheError::Backing(er.to_string()))?;
            let header =
                ChunkHeader::decode(&bytes).map_err(|er| CacheError::Corrupt(er.to_string()))?;
            self.insert_budgeted(chunk, bytes, header.header_len);
        }
        self.chunks
            .get(&chunk)
            .ok_or_else(|| CacheError::Backing(format!("chunk {chunk} evicted during insert")))
    }

    fn handle(&mut self, req: PeerRequest) -> PeerReply {
        match req {
            PeerRequest::FetchFile(meta) => {
                self.ensure_chunk(meta.chunk).and_then(|(bytes, hlen)| {
                    let start = *hlen as usize + meta.offset as usize;
                    let end = start + meta.length as usize;
                    if end > bytes.len() {
                        Err(CacheError::Corrupt(format!("range {start}..{end} outside chunk")))
                    } else {
                        Ok(bytes.slice(start..end))
                    }
                })
            }
            PeerRequest::FetchChunk(chunk) => {
                self.ensure_chunk(chunk).map(|(bytes, _)| bytes.clone())
            }
            PeerRequest::FetchResident(chunk) => match self.chunks.get(&chunk) {
                Some((bytes, _)) => Ok(bytes.clone()),
                None => Err(CacheError::NotResident { node: self.node }),
            },
            PeerRequest::Install(chunk, bytes) => {
                let header = ChunkHeader::decode(&bytes)
                    .map_err(|er| CacheError::Corrupt(er.to_string()))?;
                // Same budget as a store load: a large rebalance cannot
                // grow a peer past its capacity.
                self.insert_budgeted(chunk, bytes, header.header_len);
                Ok(Bytes::from_static(&[]))
            }
            PeerRequest::Evict(chunk) => {
                self.evict(chunk);
                Ok(Bytes::from_static(&[]))
            }
        }
    }
}

/// One master client's serving thread: owns its partition's chunks.
pub struct PeerServer {
    node: usize,
    server: ThreadServer<PeerRequest, PeerReply>,
}

impl PeerServer {
    /// Spawn a serving thread for node `node`, loading chunks lazily
    /// from `backing`, with no memory budget (use
    /// [`PeerServer::spawn_budgeted`] to bound residency).
    pub fn spawn<S: ObjectStore + 'static>(
        node: usize,
        dataset: impl Into<String>,
        backing: Arc<S>,
    ) -> Self {
        Self::spawn_budgeted(node, dataset, backing, u64::MAX)
    }

    /// Spawn a serving thread whose resident chunks are LRU-bounded at
    /// `capacity_bytes` — enforced on every path that makes a chunk
    /// resident, including chunks shipped in by a rebalance
    /// ([`PeerRequest::Install`]).
    pub fn spawn_budgeted<S: ObjectStore + 'static>(
        node: usize,
        dataset: impl Into<String>,
        backing: Arc<S>,
        capacity_bytes: u64,
    ) -> Self {
        let mut state = PeerState {
            node,
            dataset: dataset.into(),
            backing,
            capacity_bytes,
            chunks: HashMap::new(),
            lru: std::collections::VecDeque::new(),
            resident_bytes: 0,
        };
        let server = ThreadServer::spawn(Endpoint::new("peer", node), move |req| state.handle(req));
        PeerServer { node, server }
    }

    /// This peer's node index.
    pub fn node(&self) -> usize {
        self.node
    }

    /// A connection handle to this peer.
    pub fn handle(&self) -> PeerHandle {
        PeerHandle::new(self.node, Arc::new(self.server.channel()))
    }

    /// The raw transport channel, for callers who want to layer their
    /// own `diesel-net` middleware before wrapping it in a
    /// [`PeerHandle`].
    pub fn channel(&self) -> ThreadChannel<PeerRequest, PeerReply> {
        self.server.channel()
    }

    /// Stop the peer (simulating a node crash: in-flight and future
    /// requests fail).
    pub fn kill(&mut self) {
        self.server.kill();
    }
}

impl std::fmt::Debug for PeerServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PeerServer").field("node", &self.node).finish_non_exhaustive()
    }
}

/// Transport knobs for an [`RpcCache`]: deadline, retry schedule, clock
/// and (for tests) a fault policy targeting one node.
#[derive(Clone)]
pub struct NetOptions {
    /// Per-call reply deadline, if any.
    pub timeout_ns: Option<u64>,
    /// Retry schedule for timed-out calls.
    pub retry: RetryPolicy,
    /// Clock driving backoff, fault delays and latency measurement.
    pub clock: Arc<dyn Clock>,
    /// Inject faults on calls to one node: `(node, policy)`.
    pub fault_node: Option<(usize, FaultPolicy)>,
    /// Memory budget per peer for resident chunks (LRU-evicted past
    /// it, on store loads and rebalance installs alike). Matches
    /// `CacheConfig::default`'s per-node budget.
    pub capacity_bytes_per_node: u64,
}

impl Default for NetOptions {
    /// No deadline, no retries, no faults, real time, 8 GiB per peer.
    fn default() -> Self {
        NetOptions {
            timeout_ns: None,
            retry: RetryPolicy::none(),
            clock: Arc::new(SystemClock::new()),
            fault_node: None,
            capacity_bytes_per_node: 8 << 30,
        }
    }
}

impl std::fmt::Debug for NetOptions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetOptions")
            .field("timeout_ns", &self.timeout_ns)
            .field("retry", &self.retry)
            .field("fault_node", &self.fault_node)
            .field("capacity_bytes_per_node", &self.capacity_bytes_per_node)
            .finish_non_exhaustive()
    }
}

/// A task cache whose one-hop reads really cross threads: one
/// [`PeerServer`] per node, clients routing via the shared partition.
/// Membership is elastic: [`RpcCache::resize`] spawns/retires peer
/// threads and relocates moved chunks peer-to-peer.
pub struct RpcCache<S> {
    dataset: String,
    backing: Arc<S>,
    opts: NetOptions,
    partition: ChunkPartition,
    epoch: u64,
    peers: HashMap<usize, PeerServer>,
    handles: HashMap<usize, PeerHandle>,
    registry: Arc<Registry>,
}

impl<S: ObjectStore + 'static> RpcCache<S> {
    /// Spawn `nodes` peer servers for `dataset` with default transport
    /// options (no deadline, no retries).
    pub fn spawn(
        nodes: usize,
        dataset: &str,
        backing: Arc<S>,
        chunks: Vec<ChunkId>,
    ) -> Result<Self> {
        Self::spawn_with(nodes, dataset, backing, chunks, NetOptions::default())
    }

    /// Spawn with explicit transport options. Every peer channel is
    /// stacked as `Retry(Instrumented(Fault?(ThreadChannel)))`, sharing
    /// one registry with per-endpoint metric labels.
    pub fn spawn_with(
        nodes: usize,
        dataset: &str,
        backing: Arc<S>,
        chunks: Vec<ChunkId>,
        opts: NetOptions,
    ) -> Result<Self> {
        let partition = ChunkPartition::new(chunks, nodes)?;
        let registry = Arc::new(Registry::new(opts.clock.clone()));
        let mut cache = RpcCache {
            dataset: dataset.into(),
            backing,
            opts,
            partition,
            epoch: 0,
            peers: HashMap::new(),
            handles: HashMap::new(),
            registry,
        };
        for n in 0..nodes {
            cache.spawn_peer(n);
        }
        Ok(cache)
    }

    /// Spawn the serving thread and middleware stack for `node`.
    fn spawn_peer(&mut self, node: usize) {
        let peer = PeerServer::spawn_budgeted(
            node,
            self.dataset.clone(),
            self.backing.clone(),
            self.opts.capacity_bytes_per_node,
        );
        let mut raw = peer.channel();
        if let Some(ns) = self.opts.timeout_ns {
            raw = raw.with_timeout_ns(ns);
        }
        let metrics = EndpointMetrics::new(&self.registry, &raw.endpoint());
        let chan: Channel<PeerRequest, PeerReply> = match &self.opts.fault_node {
            Some((fault, policy)) if *fault == node => {
                let faulty = FaultChannel::new(raw, policy.clone(), self.opts.clock.clone());
                let measured = Instrumented::new(faulty, metrics.clone(), self.opts.clock.clone());
                Arc::new(
                    Retry::new(measured, self.opts.retry.clone(), self.opts.clock.clone())
                        .with_metrics(metrics),
                )
            }
            _ => {
                let measured = Instrumented::new(raw, metrics.clone(), self.opts.clock.clone());
                Arc::new(
                    Retry::new(measured, self.opts.retry.clone(), self.opts.clock.clone())
                        .with_metrics(metrics),
                )
            }
        };
        self.handles.insert(node, PeerHandle::new(node, chan));
        self.peers.insert(node, peer);
    }

    /// The partition map (all clients share it, so owner lookup is
    /// local — no directory hop).
    pub fn partition(&self) -> &ChunkPartition {
        &self.partition
    }

    /// The current membership epoch (bumped by every
    /// [`RpcCache::resize`]).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The registry holding per-endpoint transport metrics
    /// (`net.requests{endpoint=peer@N}` and friends) plus the
    /// `cache.rebalance.*` counters.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// The instrumented connection to `node`, or a `NodeDown` error for
    /// non-member nodes.
    pub fn handle(&self, node: usize) -> Result<PeerHandle> {
        self.handles.get(&node).cloned().ok_or(CacheError::NodeDown { node })
    }

    /// Read a file via its owner peer (one message round trip).
    pub fn get_file(&self, meta: &FileMeta) -> Result<Bytes> {
        let owner = self
            .partition
            .owner_of(meta.chunk)
            .ok_or_else(|| CacheError::UnknownChunk(meta.chunk.encode()))?;
        self.handle(owner)?.fetch_file(meta)
    }

    /// Kill one node's peer server.
    pub fn kill_node(&mut self, node: usize) {
        if let Some(peer) = self.peers.get_mut(&node) {
            peer.kill();
        }
    }

    /// Swing the membership to `0..nodes` and relocate moved chunks in
    /// three phases: **copy** (warm peer-to-peer where the previous
    /// owner still holds the chunk, backing store otherwise), **switch**
    /// (install the new partition + epoch — reads route to new owners
    /// from here on), **drain** (evict moved-out residencies and retire
    /// departed peers' threads).
    pub fn resize(&mut self, nodes: usize) -> Result<RebalanceReport> {
        let next = self.partition.with_membership(HashRing::contiguous(nodes)?);
        let moves = self.partition.moved_to(&next);
        // New members get their serving threads before any copy.
        for &n in next.members() {
            if !self.peers.contains_key(&n) {
                self.spawn_peer(n);
            }
        }
        // Phase 1: copy every moved chunk onto its new owner.
        let mut warm = 0u64;
        let mut fallback = 0u64;
        let mut bytes_moved = 0u64;
        for mv in &moves {
            let dest = self.handle(mv.to)?;
            let warm_bytes = self.handle(mv.from).and_then(|src| src.fetch_resident(mv.chunk));
            match warm_bytes {
                Ok(bytes) => {
                    bytes_moved += bytes.len() as u64;
                    dest.install(mv.chunk, bytes)?;
                    warm += 1;
                }
                Err(CacheError::NotResident { .. }) | Err(CacheError::NodeDown { .. }) => {
                    // Cold or dead previous owner: the new owner reads
                    // the authoritative store itself.
                    let bytes = dest.fetch_chunk(mv.chunk)?;
                    bytes_moved += bytes.len() as u64;
                    fallback += 1;
                }
                Err(e) => return Err(e),
            }
        }
        // Phase 2: switch routing.
        let departed: Vec<usize> = self
            .partition
            .members()
            .iter()
            .copied()
            .filter(|m| !next.members().contains(m))
            .collect();
        self.partition = next;
        self.epoch += 1;
        // Phase 3: drain moved-out residencies, retire departed peers.
        for mv in &moves {
            if self.handles.contains_key(&mv.from) {
                if let Ok(src) = self.handle(mv.from) {
                    let _ = src.evict(mv.chunk);
                }
            }
        }
        for node in departed {
            if let Some(mut peer) = self.peers.remove(&node) {
                peer.kill();
            }
            self.handles.remove(&node);
        }
        let report = RebalanceReport {
            epoch: self.epoch,
            chunks_moved: moves.len() as u64,
            peer_warm_hits: warm,
            store_fallbacks: fallback,
            bytes_moved,
        };
        let labels = &[("dataset", self.dataset.as_str())];
        self.registry.batch(|| {
            self.registry.counter("cache.rebalance.chunks_moved", labels).add(report.chunks_moved);
            self.registry.counter("cache.rebalance.peer_warm_hits", labels).add(warm);
            self.registry.counter("cache.rebalance.store_fallbacks", labels).add(fallback);
            self.registry.counter("cache.rebalance.bytes_moved", labels).add(bytes_moved);
        });
        self.registry.gauge("cache.membership_epoch", labels).set(self.epoch);
        Ok(report)
    }
}

impl<S> std::fmt::Debug for RpcCache<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RpcCache")
            .field("nodes", &self.peers.len())
            .field("epoch", &self.epoch)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task_cache::{CacheConfig, CachePolicy, TaskCache};
    use crate::topology::Topology;
    use diesel_chunk::{ChunkBuilderConfig, ChunkIdGenerator, ChunkWriter};
    use diesel_kv::ShardedKv;
    use diesel_meta::MetaService;
    use diesel_net::MockClock;
    use diesel_store::MemObjectStore;

    fn dataset(files: usize) -> (Arc<MemObjectStore>, Vec<(String, FileMeta)>, Vec<ChunkId>) {
        let store = Arc::new(MemObjectStore::new());
        let svc = MetaService::new(Arc::new(ShardedKv::new()));
        let ids = ChunkIdGenerator::deterministic(5, 5, 55);
        let cfg = ChunkBuilderConfig { target_chunk_size: 2048, ..Default::default() };
        let mut w = ChunkWriter::new(cfg, &ids).with_clock(|| 1);
        for i in 0..files {
            w.add_file(&format!("f{i:04}"), &[(i % 251) as u8; 300]).unwrap();
        }
        for sealed in w.finish() {
            store.put(&chunk_object_key("ds", sealed.header.id), sealed.bytes.clone()).unwrap();
            svc.ingest_chunk("ds", &sealed.header, sealed.bytes.len() as u64).unwrap();
        }
        let snap = svc.build_snapshot("ds").unwrap();
        let metas = snap.files.iter().map(|f| (f.path.clone(), f.meta)).collect();
        (store, metas, snap.chunks)
    }

    #[test]
    fn rpc_reads_cross_real_threads() {
        let (store, metas, chunks) = dataset(60);
        let rpc = RpcCache::spawn(3, "ds", store, chunks).unwrap();
        for (name, meta) in &metas {
            let i: usize = name[1..].parse().unwrap();
            assert_eq!(rpc.get_file(meta).unwrap().as_ref(), &vec![(i % 251) as u8; 300][..]);
        }
    }

    #[test]
    fn rpc_and_shared_memory_caches_agree() {
        let (store, metas, chunks) = dataset(50);
        let rpc = RpcCache::spawn(2, "ds", store.clone(), chunks.clone()).unwrap();
        let shm = TaskCache::new(
            Topology::uniform(2, 2).unwrap(),
            store,
            "ds",
            chunks,
            CacheConfig { capacity_bytes_per_node: 1 << 30, policy: CachePolicy::OnDemand },
        )
        .unwrap();
        for (_, meta) in &metas {
            assert_eq!(rpc.get_file(meta).unwrap(), shm.get_file(meta).unwrap().data);
        }
    }

    #[test]
    fn concurrent_clients_share_peers() {
        let (store, metas, chunks) = dataset(80);
        let rpc = Arc::new(RpcCache::spawn(4, "ds", store, chunks).unwrap());
        let metas = Arc::new(metas);
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let rpc = rpc.clone();
                let metas = metas.clone();
                std::thread::spawn(move || {
                    for (i, (_, meta)) in metas.iter().enumerate() {
                        if i % 8 == t {
                            rpc.get_file(meta).unwrap();
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn killed_peer_fails_its_partition_only() {
        let (store, metas, chunks) = dataset(60);
        let mut rpc = RpcCache::spawn(3, "ds", store, chunks).unwrap();
        rpc.kill_node(1);
        let mut down = 0;
        let mut ok = 0;
        for (_, meta) in &metas {
            match rpc.get_file(meta) {
                Ok(_) => ok += 1,
                Err(CacheError::NodeDown { node: 1 }) => down += 1,
                Err(e) => panic!("unexpected: {e}"),
            }
        }
        assert!(down > 0, "node 1's share must fail");
        assert!(ok > 0, "other partitions keep serving");
    }

    #[test]
    fn peer_handles_report_their_own_node_id() {
        // Regression: handles used to lose the peer identity and report
        // `node: usize::MAX` on any transport failure.
        let (store, metas, chunks) = dataset(30);
        let mut rpc = RpcCache::spawn(3, "ds", store, chunks).unwrap();
        for node in 0..3 {
            rpc.kill_node(node);
            let h = rpc.handle(node).unwrap();
            assert_eq!(h.node(), node);
            assert_eq!(h.fetch_file(&metas[0].1).unwrap_err(), CacheError::NodeDown { node },);
            assert_eq!(h.fetch_chunk(metas[0].1.chunk).unwrap_err(), CacheError::NodeDown { node },);
        }
    }

    #[test]
    fn fetch_chunk_returns_parseable_chunk() {
        let (store, _, chunks) = dataset(40);
        let rpc = RpcCache::spawn(2, "ds", store, chunks.clone()).unwrap();
        for &c in &chunks {
            let owner = rpc.partition().owner_of(c).unwrap();
            let bytes = rpc.handle(owner).unwrap().fetch_chunk(c).unwrap();
            diesel_chunk::ChunkReader::parse(&bytes).unwrap();
        }
    }

    #[test]
    fn drop_shuts_peers_down_cleanly() {
        let (store, metas, chunks) = dataset(20);
        let handle = {
            let rpc = RpcCache::spawn(2, "ds", store, chunks).unwrap();
            rpc.get_file(&metas[0].1).unwrap();
            rpc.handle(0).unwrap()
        }; // rpc dropped here: threads joined
        assert!(handle.fetch_file(&metas[0].1).is_err(), "dead peer must error");
    }

    #[test]
    fn fetch_resident_never_touches_the_store() {
        let (store, metas, chunks) = dataset(30);
        let rpc = RpcCache::spawn(2, "ds", store, chunks.clone()).unwrap();
        let chunk = metas[0].1.chunk;
        let owner = rpc.partition().owner_of(chunk).unwrap();
        let h = rpc.handle(owner).unwrap();
        // Cold peer: resident-only fetch refuses rather than loading.
        assert_eq!(h.fetch_resident(chunk).unwrap_err(), CacheError::NotResident { node: owner });
        // Warm it through the normal read path, then the resident fetch
        // serves from memory.
        rpc.get_file(&metas[0].1).unwrap();
        let bytes = h.fetch_resident(chunk).unwrap();
        diesel_chunk::ChunkReader::parse(&bytes).unwrap();
        // Evict drops the residency again.
        h.evict(chunk).unwrap();
        assert_eq!(h.fetch_resident(chunk).unwrap_err(), CacheError::NotResident { node: owner });
    }

    #[test]
    fn install_respects_the_peer_byte_budget() {
        // Regression: Install used to bypass the capacity policy, so a
        // large rebalance could grow a peer's memory without bound.
        let (store, _, chunks) = dataset(60);
        assert!(chunks.len() >= 3, "need several chunks to thrash");
        let sizes: Vec<u64> = chunks
            .iter()
            .map(|&c| store.size_of(&chunk_object_key("ds", c)).unwrap() as u64)
            .collect();
        let budget = sizes[0] + sizes[1]; // fits ~2 chunks
        let peer = PeerServer::spawn_budgeted(0, "ds", store.clone(), budget);
        let h = peer.handle();
        // Ship every chunk in: the peer must keep at most the budget's
        // worth resident, LRU-evicting the oldest installs.
        for &c in &chunks {
            let bytes = store.get(&chunk_object_key("ds", c)).unwrap();
            h.install(c, bytes).unwrap();
        }
        let resident: Vec<&ChunkId> =
            chunks.iter().filter(|&&c| h.fetch_resident(c).is_ok()).collect();
        assert!(resident.len() < chunks.len(), "a bounded peer cannot hold everything");
        let resident_bytes: u64 = resident
            .iter()
            .map(|&&c| store.size_of(&chunk_object_key("ds", c)).unwrap() as u64)
            .sum();
        assert!(resident_bytes <= budget, "resident {resident_bytes} exceeds budget {budget}");
        // The most recently installed chunk survived (LRU, not random).
        assert!(h.fetch_resident(*chunks.last().unwrap()).is_ok());
        // Store loads obey the same budget: reads still work, memory
        // still bounded.
        for &c in &chunks {
            h.fetch_chunk(c).unwrap();
        }
        let resident: u64 = chunks
            .iter()
            .filter(|&&c| h.fetch_resident(c).is_ok())
            .map(|&c| store.size_of(&chunk_object_key("ds", c)).unwrap() as u64)
            .sum();
        assert!(resident <= budget);
    }

    #[test]
    fn resize_relocates_warm_chunks_peer_to_peer() {
        let (store, metas, chunks) = dataset(80);
        let mut rpc = RpcCache::spawn(2, "ds", store, chunks.clone()).unwrap();
        // Warm every owner by reading the whole dataset once.
        for (_, meta) in &metas {
            rpc.get_file(meta).unwrap();
        }
        let report = rpc.resize(4).unwrap();
        assert_eq!(rpc.epoch(), 1);
        assert!(report.chunks_moved > 0, "a doubling must move chunks");
        assert_eq!(
            report.peer_warm_hits, report.chunks_moved,
            "warm cluster: every relocation is peer-to-peer"
        );
        assert_eq!(report.store_fallbacks, 0);
        // Reads still agree with the file contents from the new owners.
        for (name, meta) in &metas {
            let i: usize = name[1..].parse().unwrap();
            assert_eq!(rpc.get_file(meta).unwrap().as_ref(), &vec![(i % 251) as u8; 300][..]);
        }
        // Shrink back: the departing peers drain into the survivors.
        let report = rpc.resize(2).unwrap();
        assert_eq!(rpc.epoch(), 2);
        assert_eq!(report.peer_warm_hits, report.chunks_moved);
        assert!(rpc.handle(3).is_err(), "retired peer is gone from the membership");
        for (_, meta) in &metas {
            rpc.get_file(meta).unwrap();
        }
        let snap = rpc.registry().snapshot();
        assert!(snap.counter("cache.rebalance.peer_warm_hits{dataset=ds}") >= report.chunks_moved);
        assert_eq!(snap.counter("cache.rebalance.store_fallbacks{dataset=ds}"), 0);
        assert_eq!(snap.gauge("cache.membership_epoch{dataset=ds}"), 2);
    }

    #[test]
    fn cold_resize_falls_back_to_the_store() {
        let (store, metas, chunks) = dataset(60);
        let mut rpc = RpcCache::spawn(2, "ds", store, chunks).unwrap();
        // Nothing has been read: every peer is cold.
        let report = rpc.resize(4).unwrap();
        assert!(report.chunks_moved > 0);
        assert_eq!(report.peer_warm_hits, 0);
        assert_eq!(report.store_fallbacks, report.chunks_moved);
        for (_, meta) in &metas {
            rpc.get_file(meta).unwrap();
        }
    }

    #[test]
    fn dropped_requests_escalate_to_node_down_after_retries() {
        // End-to-end fault path: every request to node 0 is dropped →
        // each attempt times out on the mock clock → the retry layer
        // makes 3 attempts → the caller sees NodeDown with the correct
        // node id — and the per-endpoint stats recorded every attempt.
        let (store, metas, chunks) = dataset(40);
        let clock = Arc::new(MockClock::new());
        let opts = NetOptions {
            timeout_ns: Some(5_000_000),
            retry: RetryPolicy::default(), // 3 attempts
            clock: clock.clone(),
            fault_node: Some((0, FaultPolicy::drops(21, 1.0, 5_000_000))),
            ..NetOptions::default()
        };
        let rpc = RpcCache::spawn_with(2, "ds", store, chunks, opts).unwrap();
        let (of_node0, of_node1): (Vec<_>, Vec<_>) =
            metas.iter().partition(|(_, m)| rpc.partition().owner_of(m.chunk).unwrap() == 0);
        assert!(!of_node0.is_empty() && !of_node1.is_empty());

        // Node 0's partition fails with its own node id after retries.
        let (_, meta) = of_node0[0];
        assert_eq!(rpc.get_file(meta).unwrap_err(), CacheError::NodeDown { node: 0 });
        let snap = rpc.registry().snapshot();
        assert_eq!(snap.counter("net.requests{endpoint=peer@0}"), 3, "one per attempt");
        assert_eq!(snap.counter("net.errors{endpoint=peer@0}"), 3);
        assert_eq!(snap.counter("net.timeouts{endpoint=peer@0}"), 3);
        assert_eq!(snap.counter("net.retries{endpoint=peer@0}"), 2);

        // Node 1 is healthy: same cache, same options, zero errors.
        for (_, meta) in &of_node1 {
            rpc.get_file(meta).unwrap();
        }
        let snap = rpc.registry().snapshot();
        assert_eq!(snap.counter("net.requests{endpoint=peer@1}"), of_node1.len() as u64);
        assert_eq!(snap.counter("net.errors{endpoint=peer@1}"), 0);
        assert_eq!(snap.counter("net.retries{endpoint=peer@1}"), 0);
    }

    #[test]
    fn transient_drops_are_hidden_by_retries_and_match_task_cache() {
        // ~40 % of requests to node 0 are dropped, but 5 attempts make
        // end-to-end failure vanishingly rare: the RpcCache still agrees
        // byte-for-byte with the shared-memory TaskCache.
        let (store, metas, chunks) = dataset(50);
        let clock = Arc::new(MockClock::new());
        let opts = NetOptions {
            timeout_ns: Some(1_000_000),
            retry: RetryPolicy { max_attempts: 5, ..Default::default() },
            clock: clock.clone(),
            fault_node: Some((0, FaultPolicy::drops(7, 0.4, 1_000_000))),
            ..NetOptions::default()
        };
        let rpc = RpcCache::spawn_with(2, "ds", store.clone(), chunks.clone(), opts).unwrap();
        let shm = TaskCache::new(
            Topology::uniform(2, 2).unwrap(),
            store,
            "ds",
            chunks,
            CacheConfig { capacity_bytes_per_node: 1 << 30, policy: CachePolicy::OnDemand },
        )
        .unwrap();
        for (_, meta) in &metas {
            assert_eq!(rpc.get_file(meta).unwrap(), shm.get_file(meta).unwrap().data);
        }
        let snap = rpc.registry().snapshot();
        assert!(snap.counter("net.retries{endpoint=peer@0}") > 0, "drops must have forced retries");
        assert_eq!(snap.counter("net.errors{endpoint=peer@1}"), 0);
    }

    #[test]
    fn killed_peer_and_task_cache_agree_on_failure_semantics() {
        // Under a dead node, both caches fail that node's partition with
        // NodeDown{node} and keep serving the rest identically.
        let (store, metas, chunks) = dataset(60);
        let mut rpc = RpcCache::spawn(3, "ds", store.clone(), chunks.clone()).unwrap();
        let shm = TaskCache::new(
            Topology::uniform(3, 2).unwrap(),
            store,
            "ds",
            chunks,
            CacheConfig { capacity_bytes_per_node: 1 << 30, policy: CachePolicy::OnDemand },
        )
        .unwrap();
        rpc.kill_node(2);
        shm.kill_node(2);
        for (_, meta) in &metas {
            match (rpc.get_file(meta), shm.get_file(meta)) {
                (Ok(a), Ok(b)) => assert_eq!(a, b.data),
                (Err(ea), Err(eb)) => {
                    assert_eq!(ea, CacheError::NodeDown { node: 2 });
                    assert_eq!(eb, CacheError::NodeDown { node: 2 });
                }
                (a, b) => panic!("caches disagree: rpc={a:?} shm={b:?}"),
            }
        }
    }
}
