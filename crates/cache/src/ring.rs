//! Consistent-hash placement ring with virtual nodes.
//!
//! The placement authority for elastic cache membership (ROADMAP item 2,
//! DESIGN.md §13). The old `ChunkPartition` dealt chunks round-robin over
//! a *fixed* node count, so any membership change remapped almost every
//! chunk and forced a full re-warm from the backing store. A consistent-
//! hash ring instead hashes every (node, replica) pair onto a 64-bit
//! circle; a chunk is owned by the first virtual node clockwise of the
//! chunk's own hash. Adding a node therefore steals only the arc segments
//! its virtual nodes land on — ≈ 1/n of all chunks — and removing one
//! returns exactly its own segments to the survivors. The owner of every
//! *unmoved* chunk is untouched, which is what makes peer-to-peer warm
//! handoff (fetch the moved chunk from its previous owner, not the
//! backing store) well-defined.
//!
//! Determinism: the ring is a pure function of the *membership set* —
//! hash functions are fixed (FNV-1a folded through a SplitMix64
//! finalizer), ties break on node id, and member order does not matter —
//! so independently built rings on different peers agree on every owner
//! without a directory service, exactly like the round-robin partition
//! they replace (§4.2 "no directory, no extra hop").

use diesel_chunk::ChunkId;

use crate::{CacheError, Result};

/// Virtual nodes per physical node. More virtual nodes flatten the load
/// spread (stddev ≈ 1/√v of the mean share) at the cost of a larger
/// sorted point array; 128 keeps per-node shares within a few percent
/// while an 8-node ring still fits in a few cache lines of binary
/// search.
pub const DEFAULT_VNODES: usize = 128;

/// SplitMix64 finalizer: a cheap, statistically strong 64-bit mixer.
/// FNV alone clusters structured input (chunk IDs share their machine
/// and pid bytes); the finalizer spreads those clusters over the whole
/// circle.
fn mix64(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// FNV-1a 64-bit over raw bytes.
fn fnv1a(data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Position of a chunk on the circle.
fn chunk_point(chunk: ChunkId) -> u64 {
    mix64(fnv1a(&chunk.0))
}

/// Position of virtual node `replica` of `node` on the circle.
fn vnode_point(node: usize, replica: usize) -> u64 {
    mix64((node as u64).wrapping_shl(32) ^ replica as u64 ^ 0x9e37_79b9_7f4a_7c15)
}

/// A consistent-hash ring over a set of cache node ids.
///
/// Build one with [`HashRing::new`] (arbitrary member ids) or
/// [`HashRing::contiguous`] (ids `0..n`, the common task layout), then
/// derive changed memberships with [`add`](HashRing::add) /
/// [`remove`](HashRing::remove) — the ring itself is immutable, so a
/// placement epoch is always a concrete value that can be compared and
/// handed to peers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HashRing {
    /// (point, node), sorted by point then node (the tie-break keeps
    /// lookup deterministic even under a hash collision).
    points: Vec<(u64, usize)>,
    /// Sorted, deduplicated member node ids.
    members: Vec<usize>,
    /// Virtual nodes per member.
    vnodes: usize,
}

impl HashRing {
    /// Ring over `members` with [`DEFAULT_VNODES`] virtual nodes each.
    pub fn new(members: &[usize]) -> Result<Self> {
        Self::with_vnodes(members, DEFAULT_VNODES)
    }

    /// Ring over the contiguous membership `0..nodes`.
    pub fn contiguous(nodes: usize) -> Result<Self> {
        let members: Vec<usize> = (0..nodes).collect();
        Self::new(&members)
    }

    /// Ring with an explicit virtual-node count (tests, ablations).
    pub fn with_vnodes(members: &[usize], vnodes: usize) -> Result<Self> {
        // diesel-lint: allow(R6) member id list, not payload bytes
        let mut sorted: Vec<usize> = members.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        if sorted.is_empty() {
            return Err(CacheError::InvalidMembership("a ring needs at least one node".into()));
        }
        if vnodes == 0 {
            return Err(CacheError::InvalidMembership(
                "a ring needs at least one virtual node per member".into(),
            ));
        }
        let mut points = Vec::with_capacity(sorted.len() * vnodes);
        for &node in &sorted {
            for replica in 0..vnodes {
                points.push((vnode_point(node, replica), node));
            }
        }
        points.sort_unstable();
        Ok(HashRing { points, members: sorted, vnodes })
    }

    /// Sorted member node ids.
    pub fn members(&self) -> &[usize] {
        &self.members
    }

    /// Number of member nodes.
    pub fn node_count(&self) -> usize {
        self.members.len()
    }

    /// Virtual nodes per member.
    pub fn vnodes(&self) -> usize {
        self.vnodes
    }

    /// Is `node` a member?
    pub fn contains(&self, node: usize) -> bool {
        self.members.binary_search(&node).is_ok()
    }

    /// The member owning `chunk`: the first virtual node clockwise of
    /// the chunk's point, wrapping at the top of the circle.
    pub fn owner_of(&self, chunk: ChunkId) -> usize {
        let p = chunk_point(chunk);
        let idx = self.points.partition_point(|&(point, _)| point < p);
        match self.points.get(idx).or_else(|| self.points.first()) {
            Some(&(_, node)) => node,
            // Unreachable: construction rejects empty memberships.
            None => 0,
        }
    }

    /// A new ring with `node` joined. Errors if `node` is already a
    /// member.
    pub fn add(&self, node: usize) -> Result<Self> {
        if self.contains(node) {
            return Err(CacheError::InvalidMembership(format!("node {node} is already a member")));
        }
        let mut members = self.members.clone();
        members.push(node);
        Self::with_vnodes(&members, self.vnodes)
    }

    /// A new ring with `node` removed. Errors if `node` is not a member
    /// or is the last one.
    pub fn remove(&self, node: usize) -> Result<Self> {
        if !self.contains(node) {
            return Err(CacheError::InvalidMembership(format!("node {node} is not a member")));
        }
        if self.members.len() == 1 {
            return Err(CacheError::InvalidMembership(
                "cannot remove the last member of a ring".into(),
            ));
        }
        let members: Vec<usize> = self.members.iter().copied().filter(|&m| m != node).collect();
        Self::with_vnodes(&members, self.vnodes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diesel_chunk::ChunkIdGenerator;
    use proptest::prelude::*;

    fn chunks(n: usize) -> Vec<ChunkId> {
        let g = ChunkIdGenerator::deterministic(1, 1, 10);
        (0..n).map(|_| g.next_id()).collect()
    }

    #[test]
    fn empty_membership_rejected() {
        assert!(matches!(HashRing::new(&[]), Err(CacheError::InvalidMembership(_))));
        assert!(matches!(HashRing::contiguous(0), Err(CacheError::InvalidMembership(_))));
        assert!(matches!(HashRing::with_vnodes(&[0], 0), Err(CacheError::InvalidMembership(_))));
    }

    #[test]
    fn owners_are_members() {
        let ring = HashRing::new(&[3, 7, 11]).unwrap();
        for c in chunks(500) {
            assert!(ring.contains(ring.owner_of(c)));
        }
    }

    #[test]
    fn member_order_does_not_matter() {
        let a = HashRing::new(&[0, 1, 2, 3]).unwrap();
        let b = HashRing::new(&[3, 1, 0, 2, 2]).unwrap();
        assert_eq!(a, b);
        for c in chunks(300) {
            assert_eq!(a.owner_of(c), b.owner_of(c));
        }
    }

    #[test]
    fn load_is_roughly_balanced() {
        let ring = HashRing::contiguous(4).unwrap();
        let mut counts = [0usize; 4];
        for c in chunks(4000) {
            if let Some(slot) = counts.get_mut(ring.owner_of(c)) {
                *slot += 1;
            }
        }
        for &count in &counts {
            // Mean share is 1000; 128 vnodes keep the skew well inside
            // ±50 % even for structured (sequential-counter) chunk ids.
            assert!((500..=1500).contains(&count), "skewed ring load: {counts:?}");
        }
    }

    #[test]
    fn add_then_remove_roundtrips() {
        let ring = HashRing::contiguous(4).unwrap();
        let grown = ring.add(4).unwrap();
        assert_eq!(grown.members(), &[0, 1, 2, 3, 4]);
        let back = grown.remove(4).unwrap();
        assert_eq!(back, ring, "membership is the sole input to the ring");
        assert!(ring.add(2).is_err(), "double-join rejected");
        assert!(ring.remove(9).is_err(), "unknown member rejected");
        let one = HashRing::contiguous(1).unwrap();
        assert!(one.remove(0).is_err(), "last member is irremovable");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// A join moves at most 2/n of chunks (expected 1/n), and every
        /// moved chunk moves *to the joining node*: the owner of an
        /// unmoved chunk is never changed by someone else's join.
        #[test]
        fn join_moves_at_most_two_over_n(nodes in 2usize..9, seed in 0u64..50) {
            let g = ChunkIdGenerator::deterministic(seed + 1, 1, 10);
            let cs: Vec<ChunkId> = (0..600).map(|_| g.next_id()).collect();
            let before = HashRing::contiguous(nodes).unwrap();
            let after = before.add(nodes).unwrap();
            let n = after.node_count();
            let mut moved = 0usize;
            for &c in &cs {
                let (old, new) = (before.owner_of(c), after.owner_of(c));
                if old != new {
                    moved += 1;
                    prop_assert_eq!(new, nodes, "a moved chunk must move to the joining node");
                }
            }
            prop_assert!(
                moved <= 2 * cs.len() / n,
                "join moved {}/{} chunks at n={} (bound {})",
                moved, cs.len(), n, 2 * cs.len() / n
            );
        }

        /// Cross-peer agreement: two independently built rings over the
        /// same membership (any insertion order, duplicates included)
        /// agree on every owner — the `peers must agree` property of the
        /// old round-robin partition, generalized to the ring.
        #[test]
        fn independent_rings_agree_on_every_owner(
            members in proptest::collection::vec(0usize..32, 1..10),
            seed in 0u64..50,
        ) {
            let g = ChunkIdGenerator::deterministic(seed + 3, 2, 20);
            let cs: Vec<ChunkId> = (0..200).map(|_| g.next_id()).collect();
            let a = HashRing::new(&members).unwrap();
            let mut reversed = members.clone();
            reversed.reverse();
            let b = HashRing::new(&reversed).unwrap();
            for &c in &cs {
                prop_assert_eq!(a.owner_of(c), b.owner_of(c));
            }
        }

        /// A leave hands exactly the leaver's chunks to survivors; no
        /// chunk between two surviving nodes ever moves.
        #[test]
        fn leave_only_moves_the_leavers_chunks(nodes in 2usize..9, seed in 0u64..50) {
            let g = ChunkIdGenerator::deterministic(seed + 7, 3, 30);
            let cs: Vec<ChunkId> = (0..400).map(|_| g.next_id()).collect();
            let before = HashRing::contiguous(nodes).unwrap();
            let leaver = seed as usize % nodes;
            let after = before.remove(leaver).unwrap();
            for &c in &cs {
                let (old, new) = (before.owner_of(c), after.owner_of(c));
                if old != leaver {
                    prop_assert_eq!(old, new, "a surviving node's chunk moved");
                } else {
                    prop_assert!(new != leaver);
                }
            }
        }
    }
}
