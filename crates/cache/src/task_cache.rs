//! The task-grained distributed cache proper.
//!
//! One [`TaskCache`] exists per DLT task. It holds the task's dataset in
//! per-node chunk caches: any client resolves a file's chunk owner from
//! the shared [`ChunkPartition`] and fetches the file in one hop. Chunks
//! are loaded from the backing object store *whole* — the property that
//! makes warm-up and recovery fast (Fig. 11b).
//!
//! Membership is *elastic* (DESIGN.md §13): the partition rides a
//! consistent-hash ring, and [`TaskCache::resize`] /
//! [`TaskCache::add_node`] / [`TaskCache::remove_node`] install a new
//! membership epoch, then run a rebalance sweep that fills each moved
//! chunk on its new owner — **from the previous owner's memory when the
//! chunk is still resident there** (peer warm handoff), falling back to
//! the backing store only when it is not. Reads that race a rebalance
//! are protected by the epoch: a request routed with a stale owner gets
//! [`CacheError::StaleOwner`] and re-resolves.
//!
//! Lock order (runtime lockdep classes, see also `LOCK_RANKS` in
//! diesel-lint): `cache.rebalance` → `cache.membership` → `cache.node`,
//! and never two `cache.node` guards at once — warm handoff copies out
//! of the source node's guard before taking the destination's.
//!
//! Counters live in a `diesel-obs` registry under `cache.*`; related
//! updates (a read and its hit, a load and its bytes) go through
//! [`diesel_obs::Registry::batch`] so a snapshot never shows one without
//! the other.

use diesel_exec::{CancelToken, TaskHandle, WorkPool};
use diesel_obs::{trace, Counter, Gauge, Registry, RegistrySnapshot};
use diesel_util::{Condvar, Mutex, RwLock};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use diesel_chunk::{ChunkHeader, ChunkId, ChunkView};
use diesel_meta::recovery::chunk_object_key;
use diesel_meta::FileMeta;
use diesel_store::{Bytes, ObjectStore};

use crate::partition::ChunkPartition;
use crate::ring::HashRing;
use crate::topology::Topology;
use crate::{CacheError, Result};

/// When the cache pulls chunks from the backing store (§4.2 "Cache
/// Policies").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CachePolicy {
    /// Pull the whole partition right after registration, while the user
    /// is still loading checkpoints — hides first-epoch latency.
    Oneshot,
    /// Pull each chunk on its first miss; the first epoch is slower, the
    /// rest are fully cached.
    OnDemand,
}

/// Cache construction parameters.
#[derive(Debug, Clone)]
pub struct CacheConfig {
    /// Memory budget per node for cached chunks. This is the *initial*
    /// budget; a [`TenantCacheMap`](crate::TenantCacheMap) re-partitions
    /// it at runtime via [`TaskCache::set_capacity_bytes_per_node`].
    pub capacity_bytes_per_node: u64,
    /// Fill policy.
    pub policy: CachePolicy,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig { capacity_bytes_per_node: 8 << 30, policy: CachePolicy::OnDemand }
    }
}

/// Handles into the registry for the cache's `cache.*` counters.
#[derive(Debug, Clone)]
pub struct CacheMetrics {
    file_reads: Counter,
    chunk_hits: Counter,
    chunk_loads: Counter,
    bytes_loaded: Counter,
    evictions: Counter,
    recoveries: Counter,
    rebalance_moves: Counter,
    rebalance_warm_hits: Counter,
    rebalance_fallbacks: Counter,
    rebalance_bytes: Counter,
    stale_owner_retries: Counter,
    membership_epoch: Gauge,
}

impl CacheMetrics {
    /// Register the cache counters (`cache.file_reads`,
    /// `cache.chunk_hits`, `cache.chunk_loads`, `cache.bytes_loaded`,
    /// `cache.evictions`, `cache.recoveries`, the
    /// `cache.rebalance.*` family, `cache.stale_owner_retries`) and the
    /// `cache.membership_epoch` gauge in `registry`, each carrying a
    /// `{dataset=…}` label so that tenants sharing one registry stay
    /// separable (snapshot merge sums per labelled id, so per-tenant
    /// cells never double-count; cross-tenant totals come from
    /// [`diesel_obs::RegistrySnapshot::sum_counter`]).
    pub fn new(registry: &Registry, dataset: &str) -> Self {
        let labels = &[("dataset", dataset)];
        CacheMetrics {
            file_reads: registry.counter("cache.file_reads", labels),
            chunk_hits: registry.counter("cache.chunk_hits", labels),
            chunk_loads: registry.counter("cache.chunk_loads", labels),
            bytes_loaded: registry.counter("cache.bytes_loaded", labels),
            evictions: registry.counter("cache.evictions", labels),
            recoveries: registry.counter("cache.recoveries", labels),
            rebalance_moves: registry.counter("cache.rebalance.chunks_moved", labels),
            rebalance_warm_hits: registry.counter("cache.rebalance.peer_warm_hits", labels),
            rebalance_fallbacks: registry.counter("cache.rebalance.store_fallbacks", labels),
            rebalance_bytes: registry.counter("cache.rebalance.bytes_moved", labels),
            stale_owner_retries: registry.counter("cache.stale_owner_retries", labels),
            membership_epoch: registry.gauge("cache.membership_epoch", labels),
        }
    }

    /// File reads served.
    pub fn file_reads(&self) -> u64 {
        self.file_reads.get()
    }

    /// File reads whose chunk was already resident on its owner.
    pub fn chunk_hits(&self) -> u64 {
        self.chunk_hits.get()
    }

    /// Chunks loaded from the backing store.
    pub fn chunk_loads(&self) -> u64 {
        self.chunk_loads.get()
    }

    /// Bytes loaded from the backing store.
    pub fn bytes_loaded(&self) -> u64 {
        self.bytes_loaded.get()
    }

    /// Chunks evicted for capacity.
    pub fn evictions(&self) -> u64 {
        self.evictions.get()
    }

    /// Node recoveries completed (Fig. 11b sweeps).
    pub fn recoveries(&self) -> u64 {
        self.recoveries.get()
    }

    /// Chunks whose owner changed in a membership transition.
    pub fn rebalance_moves(&self) -> u64 {
        self.rebalance_moves.get()
    }

    /// Moved chunks filled from their previous owner's memory.
    pub fn rebalance_warm_hits(&self) -> u64 {
        self.rebalance_warm_hits.get()
    }

    /// Moved chunks that had to re-read the backing store.
    pub fn rebalance_fallbacks(&self) -> u64 {
        self.rebalance_fallbacks.get()
    }

    /// Bytes relocated across membership transitions (warm + fallback).
    pub fn rebalance_bytes(&self) -> u64 {
        self.rebalance_bytes.get()
    }

    /// Requests rejected with [`CacheError::StaleOwner`].
    pub fn stale_owner_retries(&self) -> u64 {
        self.stale_owner_retries.get()
    }
}

/// Result of a prefetch/recovery sweep.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LoadReport {
    /// Chunks loaded.
    pub chunks_loaded: u64,
    /// Bytes loaded.
    pub bytes_loaded: u64,
}

/// Result of one membership transition
/// ([`TaskCache::resize`]/[`add_node`](TaskCache::add_node)/
/// [`remove_node`](TaskCache::remove_node)).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RebalanceReport {
    /// The epoch installed by this transition.
    pub epoch: u64,
    /// Chunks whose owner changed (the ring bounds this at ≈ Δ/n of the
    /// dataset).
    pub chunks_moved: u64,
    /// Moved chunks filled from the previous owner's memory.
    pub peer_warm_hits: u64,
    /// Moved chunks re-read from the backing store.
    pub store_fallbacks: u64,
    /// Bytes relocated (warm + fallback).
    pub bytes_moved: u64,
}

/// A file fetched through the cache, with routing info for accounting.
#[derive(Debug, Clone)]
pub struct Fetched {
    /// The file content.
    pub data: Bytes,
    /// Node that served it.
    pub owner_node: usize,
    /// Whether the chunk was already resident (false ⇒ a chunk fill
    /// happened on this access).
    pub chunk_hit: bool,
}

/// How a chunk became resident on a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ChunkFill {
    /// Already there — someone else filled it first.
    Resident,
    /// Copied from the previous owner's memory (no store read).
    Warm(u64),
    /// Loaded from the backing store.
    Store(u64),
}

/// A resident chunk: an owned [`ChunkView`] over the loaded buffer.
/// Every file served from it is a `Bytes` sub-slice of the chunk's one
/// allocation — cache hits never copy payload (DESIGN.md §11).
#[derive(Debug)]
struct CachedChunk {
    view: ChunkView,
}

#[derive(Debug, Default)]
struct NodeInner {
    chunks: HashMap<ChunkId, CachedChunk>,
    lru: VecDeque<ChunkId>,
    resident_bytes: u64,
}

#[derive(Debug)]
struct NodeState {
    down: AtomicBool,
    inner: Mutex<NodeInner>,
}

impl Default for NodeState {
    fn default() -> Self {
        NodeState {
            down: AtomicBool::new(false),
            inner: Mutex::named("cache.node", NodeInner::default()),
        }
    }
}

/// The mutable placement plane: which nodes exist, which chunks they
/// own, and which moved-out chunks are still warm on their previous
/// owner (the overlap window of an in-flight rebalance).
#[derive(Debug)]
struct Membership {
    partition: ChunkPartition,
    nodes: HashMap<usize, Arc<NodeState>>,
    /// chunk → its *previous* owner's state, for every chunk whose
    /// relocation has not completed yet. The entry keeps a removed
    /// node's memory alive exactly until its chunks are handed off.
    handoff: HashMap<ChunkId, Arc<NodeState>>,
    epoch: u64,
}

/// The distributed cache of one DLT task.
pub struct TaskCache<S> {
    topology: Topology,
    membership: RwLock<Membership>,
    /// Serializes membership transitions; held across the whole sweep so
    /// two resizes can never interleave their handoff windows.
    rebalance_lock: Mutex<()>,
    /// Signal for the post-sweep drain: [`TaskCache::complete_handoff`]
    /// notifies under this mutex after removing a handoff entry, so the
    /// rebalance coordinator sleeps instead of spinning while racing
    /// on-demand fillers finish counting.
    drain_mutex: Mutex<()>,
    drain_cv: Condvar,
    backing: Arc<S>,
    dataset: String,
    config: CacheConfig,
    /// The live per-node byte budget. Starts at
    /// `config.capacity_bytes_per_node`; a tenant map re-partitions it
    /// at runtime, and `install_chunk`'s eviction loop reads it fresh on
    /// every install so shrinks take effect immediately.
    capacity_bytes: AtomicU64,
    verify_on_load: AtomicBool,
    registry: Arc<Registry>,
    metrics: CacheMetrics,
    pool: WorkPool,
}

impl<S: ObjectStore> TaskCache<S> {
    /// Build the cache for `dataset`, whose chunks are `chunks`, across
    /// the nodes of `topology`, with a private registry.
    pub fn new(
        topology: Topology,
        backing: Arc<S>,
        dataset: impl Into<String>,
        chunks: Vec<ChunkId>,
        config: CacheConfig,
    ) -> Result<Self> {
        Self::with_registry(
            topology,
            backing,
            dataset,
            chunks,
            config,
            Arc::new(Registry::default()),
        )
    }

    /// Build the cache with its counters in a shared `registry`.
    pub fn with_registry(
        topology: Topology,
        backing: Arc<S>,
        dataset: impl Into<String>,
        chunks: Vec<ChunkId>,
        config: CacheConfig,
        registry: Arc<Registry>,
    ) -> Result<Self> {
        let p = topology.node_count();
        let dataset = dataset.into();
        let metrics = CacheMetrics::new(&registry, &dataset);
        let partition = ChunkPartition::new(chunks, p)?;
        let nodes = partition.members().iter().map(|&id| (id, Arc::default())).collect();
        Ok(TaskCache {
            topology,
            membership: RwLock::named(
                "cache.membership",
                Membership { partition, nodes, handoff: HashMap::new(), epoch: 0 },
            ),
            rebalance_lock: Mutex::named("cache.rebalance", ()),
            drain_mutex: Mutex::named("cache.rebalance_drain", ()),
            drain_cv: Condvar::new(),
            backing,
            dataset,
            capacity_bytes: AtomicU64::new(config.capacity_bytes_per_node),
            config,
            verify_on_load: AtomicBool::new(false),
            registry,
            metrics,
            pool: diesel_exec::global().clone(),
        })
    }

    /// Run this cache's prefetch/recovery sweeps on `pool` instead of
    /// the process-wide [`diesel_exec::global()`] pool (e.g. an inline
    /// pool for deterministic tests).
    pub fn with_pool(mut self, pool: WorkPool) -> Self {
        self.pool = pool;
        self
    }

    /// Verify every per-file CRC when a chunk is loaded from the
    /// backing store (catches storage-layer corruption at the cost of
    /// one checksum pass per load). Off by default: the header CRC is
    /// always checked.
    pub fn set_verify_on_load(&self, on: bool) {
        self.verify_on_load.store(on, Ordering::Release);
    }

    /// The task topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The dataset (tenant) this cache serves.
    pub fn dataset(&self) -> &str {
        &self.dataset
    }

    /// The construction-time configuration (the *initial* budget; the
    /// live one is [`TaskCache::capacity_bytes_per_node`]).
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// The live per-node byte budget.
    pub fn capacity_bytes_per_node(&self) -> u64 {
        self.capacity_bytes.load(Ordering::Acquire)
    }

    /// Re-point the per-node byte budget (a tenant map re-partitioning
    /// weighted shares) and immediately shrink every node's residency
    /// down to it, LRU-first. Growing never evicts; shrinking evicts
    /// synchronously so one tenant's new cap can never be violated by
    /// residency installed under the old one.
    pub fn set_capacity_bytes_per_node(&self, bytes: u64) {
        self.capacity_bytes.store(bytes, Ordering::Release);
        let states: Vec<Arc<NodeState>> = {
            let m = self.membership.read();
            m.nodes.values().cloned().collect()
        };
        for st in states {
            let mut inner = st.inner.lock();
            while inner.resident_bytes > bytes {
                let Some(victim) = inner.lru.pop_front() else { break };
                if let Some(v) = inner.chunks.remove(&victim) {
                    inner.resident_bytes -= v.view.chunk_len() as u64;
                    self.metrics.evictions.inc();
                }
            }
        }
    }

    /// A snapshot of the current chunk partition map. This is a copy:
    /// membership can change under your feet, so pair any routing
    /// decision made from it with [`TaskCache::get_file_routed`]'s epoch
    /// check (take the epoch from [`TaskCache::membership_epoch`]).
    pub fn partition(&self) -> ChunkPartition {
        self.membership.read().partition.clone()
    }

    /// The current membership epoch (bumped by every transition).
    pub fn membership_epoch(&self) -> u64 {
        self.membership.read().epoch
    }

    /// The current member node ids, sorted.
    pub fn members(&self) -> Vec<usize> {
        // diesel-lint: allow(R6) member id list, not payload bytes
        self.membership.read().partition.members().to_vec()
    }

    /// Oneshot prefetch: fan chunk loads across the work pool, every
    /// node's partition at once (call right after task registration;
    /// §4.2). The report — and the first error, if any — is identical
    /// to the serial node-by-node, chunk-by-chunk sweep for any worker
    /// count; concurrent on-demand readers de-duplicate against the
    /// sweep chunk-wise.
    pub fn prefetch_all(&self) -> Result<LoadReport> {
        self.prefetch_sweep(None)
    }

    fn prefetch_sweep(&self, cancel: Option<&CancelToken>) -> Result<LoadReport> {
        let partition = self.partition();
        // Fail fast on downed nodes, like the serial sweep did at the
        // start of each node's partition.
        for &node in partition.members() {
            if self.is_node_down(node) {
                return Err(CacheError::NodeDown { node });
            }
        }
        let pairs: Vec<(usize, ChunkId)> = partition
            .members()
            .iter()
            .flat_map(|&node| partition.chunks_of(node).iter().map(move |&c| (node, c)))
            .collect();
        let loads = self.pool.try_map(pairs, |_, (node, chunk)| {
            if cancel.is_some_and(CancelToken::is_cancelled) {
                return Ok((false, 0));
            }
            match self.ensure_chunk(node, chunk) {
                // A rebalance moved the chunk after this sweep
                // snapshotted the partition; its new owner is filled by
                // the rebalance sweep (or on demand), not by us.
                Err(CacheError::StaleOwner { .. }) => Ok((false, 0)),
                other => other,
            }
        })?;
        let mut report = LoadReport::default();
        for (loaded, bytes) in loads {
            if loaded {
                report.chunks_loaded += 1;
                report.bytes_loaded += bytes;
            }
        }
        Ok(report)
    }

    /// Oneshot prefetch in the background: "the DIESEL client caches the
    /// dataset in the background when the user loads the training models
    /// from disk" (§4.2). Reads proceed concurrently (misses load on
    /// demand and de-duplicate against the sweep). Unlike a raw
    /// `JoinHandle`, dropping the returned handle cancels the sweep
    /// cooperatively instead of leaking it.
    pub fn prefetch_background(self: &Arc<Self>) -> PrefetchHandle
    where
        S: 'static,
    {
        let me = Arc::clone(self);
        let task = self.pool.spawn_cancellable(move |token| me.prefetch_sweep(Some(token)));
        PrefetchHandle {
            task: Some(task),
            registry: Arc::clone(&self.registry),
            dataset: self.dataset.clone(),
        }
    }

    /// Fraction of the dataset's chunks currently resident (the "cache
    /// hit ratio" axis of Figs. 6/11b). During a rebalance overlap
    /// window a moved chunk can be resident on both its old and new
    /// owner; the fraction counts residencies, so it can exceed 1.
    /// That excess is normally transient, but after a rebalance sweep
    /// *fails* partway it persists — the unfinished chunks' warm copies
    /// stay pinned on their previous owners (see
    /// [`TaskCache::pending_handoffs`]) until the transition is retried,
    /// a later transition supersedes it, or the chunks are read on
    /// demand.
    pub fn resident_fraction(&self) -> f64 {
        let m = self.membership.read();
        let total = m.partition.chunk_count();
        if total == 0 {
            return 1.0;
        }
        let states: Vec<Arc<NodeState>> = m.nodes.values().cloned().collect();
        drop(m);
        let resident: usize = states.iter().map(|n| n.inner.lock().chunks.len()).sum();
        resident as f64 / total as f64
    }

    /// The node state for `node`, or a `NodeDown` error when no such
    /// node exists in the current membership.
    fn node_state(&self, node: usize) -> Result<Arc<NodeState>> {
        self.membership.read().nodes.get(&node).cloned().ok_or(CacheError::NodeDown { node })
    }

    /// Bytes resident on one node (0 for non-members).
    pub fn node_resident_bytes(&self, node: usize) -> u64 {
        match self.node_state(node) {
            Ok(st) => st.inner.lock().resident_bytes,
            Err(_) => 0,
        }
    }

    /// Kill a node: its cached chunks are gone and requests routed to it
    /// fail until [`TaskCache::recover_node`].
    pub fn kill_node(&self, node: usize) {
        if let Ok(st) = self.node_state(node) {
            st.down.store(true, Ordering::Release);
            *st.inner.lock() = NodeInner::default();
            self.registry.event(
                "cache.kill_node",
                &[("dataset", &self.dataset), ("node", &node.to_string())],
            );
        }
    }

    /// Is `node` down?
    pub fn is_node_down(&self, node: usize) -> bool {
        self.node_state(node).is_ok_and(|st| st.down.load(Ordering::Acquire))
    }

    /// Bring a node back and reload its partition chunk-wise from the
    /// backing store. Returns what was loaded (the Fig. 11b recovery
    /// measurement).
    pub fn recover_node(&self, node: usize) -> Result<LoadReport> {
        self.node_state(node)?.down.store(false, Ordering::Release);
        let report = self.load_partition(node)?;
        self.metrics.recoveries.inc();
        self.registry.event(
            "cache.recover_node",
            &[
                ("dataset", &self.dataset),
                ("node", &node.to_string()),
                ("chunks", &report.chunks_loaded.to_string()),
            ],
        );
        Ok(report)
    }

    /// Reload one node's partition, chunk loads fanned across the pool
    /// (the Fig. 11b chunk-wise recovery sweep).
    fn load_partition(&self, node: usize) -> Result<LoadReport> {
        if self.is_node_down(node) {
            return Err(CacheError::NodeDown { node });
        }
        // diesel-lint: allow(R6) chunk-id list, not payload bytes
        let chunks: Vec<ChunkId> = self.partition().chunks_of(node).to_vec();
        let loads = self.pool.try_map(chunks, |_, chunk| {
            match self.ensure_chunk(node, chunk) {
                // A rebalance re-owned the chunk mid-recovery; its new
                // owner is responsible for it now.
                Err(CacheError::StaleOwner { .. }) => Ok((false, 0)),
                other => other,
            }
        })?;
        let mut report = LoadReport::default();
        for (loaded, bytes) in loads {
            if loaded {
                report.chunks_loaded += 1;
                report.bytes_loaded += bytes;
            }
        }
        Ok(report)
    }

    /// Grow/shrink to the contiguous membership `0..nodes` and rebalance.
    pub fn resize(&self, nodes: usize) -> Result<RebalanceReport> {
        self.rebalance_to(HashRing::contiguous(nodes)?)
    }

    /// Join `node` to the membership and rebalance (steals ≈ 1/n of the
    /// chunks, warm where possible).
    pub fn add_node(&self, node: usize) -> Result<RebalanceReport> {
        let ring = self.membership.read().partition.ring().add(node)?;
        self.rebalance_to(ring)
    }

    /// Retire `node` from the membership and rebalance: its chunks are
    /// handed to the survivors from its memory while it drains, then its
    /// state is dropped.
    pub fn remove_node(&self, node: usize) -> Result<RebalanceReport> {
        let ring = self.membership.read().partition.ring().remove(node)?;
        self.rebalance_to(ring)
    }

    /// Install `ring` as the new membership (epoch bump) and run the
    /// rebalance sweep on the work pool: every moved chunk is filled on
    /// its new owner from the previous owner's memory when still
    /// resident there, else from the backing store. On-demand misses of
    /// moved chunks run inline on the reader's thread (they don't queue
    /// behind the sweep) and de-duplicate against it chunk-wise.
    ///
    /// # Failure and repair
    ///
    /// If the sweep errors partway (e.g. a transient backing-store
    /// failure on a cold fallback), the new epoch stays installed and
    /// the unfinished chunks keep their handoff windows open: their
    /// warm copies stay resident on the previous owners (so
    /// [`TaskCache::resident_fraction`] can exceed 1 until they drain)
    /// and each window is closed by whichever comes first — an
    /// on-demand read of the chunk, a later membership transition, or a
    /// *retry*: calling `rebalance_to`/[`resize`](TaskCache::resize)
    /// again with the **same** ring runs a repair sweep over the open
    /// windows instead of returning early, and its report counts
    /// exactly the chunks it finished.
    pub fn rebalance_to(&self, ring: HashRing) -> Result<RebalanceReport> {
        let _serial = self.rebalance_lock.lock();
        // Snapshot the handoff counters before the epoch is visible:
        // once Phase 1 publishes the handoff map, a concurrent on-demand
        // miss can complete a warm handoff before the sweep reaches that
        // chunk, and its fill must count into this report's window.
        let warm0 = self.metrics.rebalance_warm_hits();
        let fallback0 = self.metrics.rebalance_fallbacks();
        let bytes0 = self.metrics.rebalance_bytes();
        // Phase 1: swing the placement plane in one write-locked step.
        // `moves` comes out as `(chunk, destination)` pairs: a fresh
        // transition's moved-chunk delta, or — when `ring` is already
        // installed — the repair set of still-open handoff windows.
        let (epoch, repair, moves) = {
            let mut m = self.membership.write();
            let mm = &mut *m;
            if ring == *mm.partition.ring() {
                // Same membership: nothing to move, but an earlier
                // sweep that failed partway may have left handoff
                // windows open. Finish those instead of returning
                // early, so a failed `resize` can simply be retried.
                let mut pending: Vec<(ChunkId, usize)> = mm
                    .handoff
                    .keys()
                    .filter_map(|&chunk| {
                        // Windows whose destination is down stay parked
                        // for `recover_node`; repairing them here would
                        // report moves that never happened.
                        let to = mm.partition.owner_of(chunk)?;
                        let up = mm.nodes.get(&to).is_some_and(|n| !n.down.load(Ordering::Acquire));
                        up.then_some((chunk, to))
                    })
                    .collect();
                if pending.is_empty() {
                    return Ok(RebalanceReport { epoch: mm.epoch, ..RebalanceReport::default() });
                }
                pending.sort();
                (mm.epoch, true, pending)
            } else {
                let next = mm.partition.with_membership(ring);
                let moves = mm.partition.moved_to(&next);
                let mut nodes: HashMap<usize, Arc<NodeState>> = HashMap::new();
                for &id in next.members() {
                    nodes.insert(id, mm.nodes.get(&id).cloned().unwrap_or_default());
                }
                for mv in &moves {
                    // Normalize this chunk's window before opening a new
                    // one. A pre-existing entry is an unfinished window
                    // from an earlier transition (failed sweep, downed
                    // destination); stacking a fresh entry on top of it
                    // blindly would leak its warm copy — or worse, leave
                    // an entry that no fill will ever complete.
                    let dest = nodes.get(&mv.to);
                    let resident =
                        dest.is_some_and(|d| d.inner.lock().chunks.contains_key(&mv.chunk));
                    let prev = mm.handoff.remove(&mv.chunk);
                    if resident {
                        // The destination already holds the bytes (a
                        // chunk moving back onto a node whose earlier
                        // move-out never completed). Close the window
                        // here, under the write lock: the sweep's fill
                        // will return `Resident`, so nothing downstream
                        // would ever complete it — the old drain loop
                        // deadlocked on exactly this state.
                        let Some(dest) = dest else { continue };
                        for stale in prev.iter().chain(mm.nodes.get(&mv.from)) {
                            if !Arc::ptr_eq(stale, dest) {
                                evict_residency(stale, mv.chunk);
                            }
                        }
                        continue;
                    }
                    // Pick the warm source: an open window's source
                    // still holds the bytes (chained handoff across two
                    // transitions) — unless it *is* the new destination,
                    // in which case only the store can fill it. With no
                    // history, the outgoing owner is the source.
                    let src = match prev {
                        Some(p) if dest.is_some_and(|d| Arc::ptr_eq(&p, d)) => None,
                        Some(p) => Some(p),
                        None => mm.nodes.get(&mv.from).cloned(),
                    };
                    if let Some(src) = src {
                        mm.handoff.insert(mv.chunk, src);
                    }
                }
                mm.nodes = nodes;
                mm.partition = next;
                mm.epoch += 1;
                let keys = moves.iter().map(|mv| (mv.chunk, mv.to)).collect();
                (mm.epoch, false, keys)
            }
        };
        if !repair {
            self.metrics.membership_epoch.set(epoch);
            self.metrics.rebalance_moves.add(moves.len() as u64);
        }
        let mut span = if trace::active() {
            trace::span("cache.rebalance", &[("epoch", epoch.to_string().as_str())])
        } else {
            trace::SpanGuard::default()
        };
        let chunks_moved = moves.len() as u64;
        let move_keys = moves.clone();
        // Phase 2: the sweep. `try_map` keeps the first error and a
        // deterministic result order at any worker count.
        let sweep = self.pool.try_map(moves, |_, (chunk, to)| self.move_chunk(chunk, to));
        if let Err(e) = sweep {
            // The unfinished windows stay open (see "Failure and
            // repair" above); surface the first error so the caller
            // can retry the same transition.
            self.registry.event(
                "cache.rebalance_failed",
                &[
                    ("dataset", &self.dataset),
                    ("epoch", &epoch.to_string()),
                    ("error", &e.to_string()),
                ],
            );
            return Err(e);
        }
        self.drain_moved(&move_keys);
        let report = RebalanceReport {
            epoch,
            chunks_moved,
            peer_warm_hits: self.metrics.rebalance_warm_hits() - warm0,
            store_fallbacks: self.metrics.rebalance_fallbacks() - fallback0,
            bytes_moved: self.metrics.rebalance_bytes() - bytes0,
        };
        span.label("moved", &report.chunks_moved.to_string());
        span.label("warm", &report.peer_warm_hits.to_string());
        self.registry.event(
            "cache.rebalance",
            &[
                ("dataset", &self.dataset),
                ("epoch", &epoch.to_string()),
                ("nodes", &self.members().len().to_string()),
                ("moved", &report.chunks_moved.to_string()),
                ("warm", &report.peer_warm_hits.to_string()),
                ("fallback", &report.store_fallbacks.to_string()),
            ],
        );
        Ok(report)
    }

    /// Wait out racing on-demand fills before reading the report
    /// counters: a reader that won an install race may still sit
    /// between its install (which made the sweep's own fill return
    /// `Resident`) and its counter increments. Each winner removes its
    /// handoff entry only *after* counting, so once every moved chunk
    /// with a live destination has its entry gone the window is
    /// complete. Downed destinations are skipped: nothing fills them,
    /// their entries persist for recovery.
    ///
    /// Waiters park on `drain_cv` (notified by every
    /// [`TaskCache::complete_handoff`]) instead of spinning; the
    /// bounded `wait_timeout` re-checks the `down` flags, and if no
    /// entry completes across many consecutive timeouts the drain gives
    /// up with a `cache.rebalance.drain_stalled` event rather than
    /// wedging every future membership transition — the stragglers'
    /// fills still complete their windows, only the report's counter
    /// window closes early.
    fn drain_moved(&self, move_keys: &[(ChunkId, usize)]) {
        let mut stalled_rounds = 0u32;
        let mut last_pending = usize::MAX;
        let mut guard = self.drain_mutex.lock();
        loop {
            let pending = {
                let m = self.membership.read();
                move_keys
                    .iter()
                    .filter(|&&(chunk, to)| {
                        m.handoff.contains_key(&chunk)
                            && m.nodes.get(&to).is_some_and(|n| !n.down.load(Ordering::Acquire))
                    })
                    .count()
            };
            if pending == 0 {
                return;
            }
            if pending < last_pending {
                last_pending = pending;
                stalled_rounds = 0;
            }
            let (g, timed_out) = self.drain_cv.wait_timeout(guard, Duration::from_millis(50));
            guard = g;
            if timed_out {
                stalled_rounds += 1;
                // ~5 s with zero completions: a filler is wedged (or an
                // unforeseen state slipped in). Give up on the exact
                // counter window instead of holding `rebalance_lock`
                // forever.
                if stalled_rounds >= 100 {
                    self.registry.event(
                        "cache.rebalance.drain_stalled",
                        &[("dataset", &self.dataset), ("pending", &pending.to_string())],
                    );
                    return;
                }
            }
        }
    }

    /// Relocate one moved chunk onto its new owner (a sweep step).
    fn move_chunk(&self, chunk: ChunkId, to: usize) -> Result<ChunkFill> {
        if self.is_node_down(to) {
            // The sweep skips downed destinations; `recover_node` will
            // reload their partition when they return.
            return Ok(ChunkFill::Resident);
        }
        self.fill_chunk(to, chunk)
    }

    /// Handoff windows still open: moved chunks whose relocation has
    /// not completed yet (their warm copies are still pinned on the
    /// previous owners). Nonzero after a failed or partially-drained
    /// transition; retrying the same transition (or any later one, or
    /// an on-demand read of each chunk) closes them.
    pub fn pending_handoffs(&self) -> usize {
        self.membership.read().handoff.len()
    }

    /// Resolve the owner of `chunk` under the current epoch. The pair
    /// feeds [`TaskCache::get_file_routed`], which rejects it with
    /// [`CacheError::StaleOwner`] if a rebalance lands in between.
    pub fn resolve_owner(&self, chunk: ChunkId) -> Result<(usize, u64)> {
        let m = self.membership.read();
        match m.partition.owner_of(chunk) {
            Some(owner) => Ok((owner, m.epoch)),
            None => Err(CacheError::UnknownChunk(chunk.encode())),
        }
    }

    /// Read a whole file through the cache, re-resolving the owner if a
    /// membership transition invalidates the route mid-flight.
    pub fn get_file(&self, meta: &FileMeta) -> Result<Fetched> {
        // Fast path: owner resolution and the hit probe under one
        // membership read acquisition — the fully-warm steady state
        // pays a single RwLock round instead of resolve-then-validate.
        // Traced runs take the routed path below so every read still
        // gets its `cache.get` span.
        if !trace::active() {
            // The membership guard is dropped before the node probe:
            // the hit itself needs no route validation (chunk bytes are
            // immutable, so a hit on a just-retired owner still serves
            // the right data), and keeping the guard would nest every
            // hot-path lock under it — one lockdep graph round per
            // acquisition instead of per miss.
            let route = {
                let m = self.membership.read();
                match m.partition.owner_of(meta.chunk) {
                    None => {
                        self.metrics.file_reads.inc();
                        return Err(CacheError::UnknownChunk(meta.chunk.encode()));
                    }
                    Some(owner) => m.nodes.get(&owner).cloned().map(|dest| (owner, dest)),
                }
            };
            if let Some((owner, dest)) = route {
                if !dest.down.load(Ordering::Acquire) {
                    let inner = dest.inner.lock();
                    if let Some(c) = inner.chunks.get(&meta.chunk) {
                        self.registry.batch(|| {
                            self.metrics.file_reads.inc();
                            self.metrics.chunk_hits.inc();
                        });
                        let data = slice_file(c, meta)?;
                        return Ok(Fetched { data, owner_node: owner, chunk_hit: true });
                    }
                }
            }
        }
        let mut attempts = 0;
        loop {
            let (owner, epoch) = match self.resolve_owner(meta.chunk) {
                Ok(route) => route,
                Err(e) => {
                    self.metrics.file_reads.inc();
                    return Err(e);
                }
            };
            match self.get_file_routed(meta, owner, epoch) {
                Err(CacheError::StaleOwner { .. }) if attempts < 2 => attempts += 1,
                other => return other,
            }
        }
    }

    /// Read a whole file from `owner`, validating that the route was
    /// resolved under the current `epoch`. Remote callers (the RPC
    /// transport, clients holding a partition snapshot) use this to get
    /// a typed [`CacheError::StaleOwner`] instead of a wrong-node read
    /// when a rebalance raced their routing decision.
    pub fn get_file_routed(&self, meta: &FileMeta, owner: usize, epoch: u64) -> Result<Fetched> {
        let mut span = if trace::active() {
            let chunk = meta.chunk.encode();
            trace::span("cache.get", &[("chunk", chunk.as_str())])
        } else {
            trace::SpanGuard::default()
        };
        let dest = {
            let m = self.membership.read();
            if m.epoch != epoch || m.partition.owner_of(meta.chunk) != Some(owner) {
                self.metrics.stale_owner_retries.inc();
                span.label("outcome", "stale_owner");
                return Err(CacheError::StaleOwner { epoch: m.epoch });
            }
            m.nodes.get(&owner).cloned()
        };
        let Some(dest) = dest else {
            self.metrics.file_reads.inc();
            span.label("outcome", "node_down");
            return Err(CacheError::NodeDown { node: owner });
        };
        if dest.down.load(Ordering::Acquire) {
            self.metrics.file_reads.inc();
            span.label("outcome", "node_down");
            return Err(CacheError::NodeDown { node: owner });
        }
        // Fast path: chunk resident on its owner. The read and its hit
        // are one batch so a snapshot never sees hits > reads.
        {
            let inner = dest.inner.lock();
            if let Some(c) = inner.chunks.get(&meta.chunk) {
                self.registry.batch(|| {
                    self.metrics.file_reads.inc();
                    self.metrics.chunk_hits.inc();
                });
                let data = slice_file(c, meta)?;
                span.label("outcome", "hit");
                return Ok(Fetched { data, owner_node: owner, chunk_hit: true });
            }
        }
        // Miss: fill the whole chunk (any policy — Oneshot may have
        // evicted under memory pressure), then serve. During a rebalance
        // overlap this runs inline on the reader's thread and fills warm
        // from the previous owner — the on-demand-miss-priority path.
        self.metrics.file_reads.inc();
        span.label("outcome", "miss");
        if let Err(e) = self.fill_chunk(owner, meta.chunk) {
            if matches!(e, CacheError::StaleOwner { .. }) {
                // A rebalance landed between route validation and the
                // fill; surface the typed error so the caller re-routes.
                self.metrics.stale_owner_retries.inc();
                span.label("outcome", "stale_owner");
            }
            return Err(e);
        }
        let inner = dest.inner.lock();
        let c = inner
            .chunks
            .get(&meta.chunk)
            .ok_or_else(|| CacheError::UnknownChunk(meta.chunk.encode()))?;
        let data = slice_file(c, meta)?;
        Ok(Fetched { data, owner_node: owner, chunk_hit: false })
    }

    /// Ensure `chunk` is resident on `node`; returns `(loaded now?,
    /// chunk bytes)`. Prefetch/recovery sweeps use this shape.
    fn ensure_chunk(&self, node: usize, chunk: ChunkId) -> Result<(bool, u64)> {
        match self.fill_chunk(node, chunk)? {
            ChunkFill::Resident => Ok((false, 0)),
            ChunkFill::Warm(b) | ChunkFill::Store(b) => Ok((true, b)),
        }
    }

    /// Make `chunk` resident on `node`, preferring the previous owner's
    /// memory (warm handoff) when the chunk is mid-relocation, else the
    /// backing store.
    ///
    /// Route validation, the residency check, and the handoff lookup
    /// happen under one membership read guard: a rebalance's Phase 1
    /// (which bumps the epoch and rewires the handoff map under the
    /// write lock) cannot interleave between them. Without this, a
    /// reader that resolved its route before a rebalance could fill the
    /// *old* owner from the store after the sweep already drained it —
    /// a ghost residency that a later resize mistakes for a completed
    /// move (its fill returns `Resident`, silently skipping the warm
    /// handoff).
    fn fill_chunk(&self, node: usize, chunk: ChunkId) -> Result<ChunkFill> {
        enum Plan {
            Warm(Arc<NodeState>, ChunkView),
            Fallback(Option<Arc<NodeState>>),
        }
        let (dest, plan) = {
            let m = self.membership.read();
            if m.partition.owner_of(chunk) != Some(node) {
                // The route is stale: `node` no longer owns `chunk`.
                // Callers re-resolve; filling anyway would plant the
                // chunk on a non-owner.
                return Err(CacheError::StaleOwner { epoch: m.epoch });
            }
            let Some(dest) = m.nodes.get(&node).cloned() else {
                return Err(CacheError::NodeDown { node });
            };
            if dest.inner.lock().chunks.contains_key(&chunk) {
                return Ok(ChunkFill::Resident);
            }
            // Warm handoff: if this chunk is mid-relocation, its
            // previous owner may still hold it — a refcounted view
            // clone, no store read, no payload copy.
            let plan = match m.handoff.get(&chunk) {
                Some(src) => {
                    let warm = src.inner.lock().chunks.get(&chunk).map(|c| c.view.clone());
                    match warm {
                        Some(view) => Plan::Warm(Arc::clone(src), view),
                        // The previous owner no longer holds it
                        // (evicted, killed): fall back to the
                        // authoritative store and close the window.
                        None => Plan::Fallback(Some(Arc::clone(src))),
                    }
                }
                None => Plan::Fallback(None),
            };
            (dest, plan)
        };
        // Exactly one racing filler wins the install; only the winner
        // counts the fill and completes the handoff, and it counts
        // *before* completing. The handoff entry's removal is therefore
        // ordered after the winner's counters, which is what lets
        // `rebalance_to` treat "every moved chunk's entry is gone" as
        // "every fill in this window has been counted".
        match plan {
            Plan::Warm(src, view) => {
                let size = view.chunk_len() as u64;
                if !self.install_chunk(&dest, chunk, view) {
                    return Ok(ChunkFill::Resident); // raced; winner counts
                }
                self.registry.batch(|| {
                    self.metrics.rebalance_warm_hits.inc();
                    self.metrics.rebalance_bytes.add(size);
                });
                self.complete_handoff(chunk, &src);
                Ok(ChunkFill::Warm(size))
            }
            Plan::Fallback(Some(src)) => {
                let size = self.load_from_store(&dest, chunk)?;
                if size == 0 {
                    return Ok(ChunkFill::Resident); // raced; winner counts
                }
                self.registry.batch(|| {
                    self.metrics.rebalance_fallbacks.inc();
                    self.metrics.rebalance_bytes.add(size);
                });
                self.complete_handoff(chunk, &src);
                Ok(ChunkFill::Store(size))
            }
            Plan::Fallback(None) => Ok(ChunkFill::Store(self.load_from_store(&dest, chunk)?)),
        }
    }

    /// Load `chunk` from the backing store into `dest`. Returns the
    /// chunk size (0 when a racing fill installed it first).
    fn load_from_store(&self, dest: &Arc<NodeState>, chunk: ChunkId) -> Result<u64> {
        let key = chunk_object_key(&self.dataset, chunk);
        // The miss path's fetch from the backing store (the peer/load
        // leg of a cache read) is its own child span.
        let bytes = {
            let _span = if trace::active() {
                trace::span("store.get", &[("key", key.as_str())])
            } else {
                trace::SpanGuard::default()
            };
            self.backing.get(&key).map_err(|e| CacheError::Backing(e.to_string()))?
        };
        // Decode the header once per load; the view reuses it for every
        // read served from this residency.
        let header = ChunkHeader::decode(&bytes).map_err(|e| CacheError::Corrupt(e.to_string()))?;
        let view =
            ChunkView::from_parts(bytes, header).map_err(|e| CacheError::Corrupt(e.to_string()))?;
        if self.verify_on_load.load(Ordering::Acquire) {
            let bad = view.verify_all();
            if !bad.is_empty() {
                return Err(CacheError::Corrupt(format!(
                    "chunk {chunk} holds corrupt files: {bad:?}"
                )));
            }
        }
        let size = view.chunk_len() as u64;
        if !self.install_chunk(dest, chunk, view) {
            return Ok(0); // raced with another client
        }
        // A load and its bytes are one batch: a snapshot never shows a
        // chunk counted without its bytes (the tearing the old
        // `CacheStats::snapshot` allowed).
        self.registry.batch(|| {
            self.metrics.chunk_loads.inc();
            self.metrics.bytes_loaded.add(size);
        });
        Ok(size)
    }

    /// Insert a resident chunk into `dest` under its LRU budget.
    /// Returns false when the chunk was already there (racing fill).
    fn install_chunk(&self, dest: &Arc<NodeState>, chunk: ChunkId, view: ChunkView) -> bool {
        let size = view.chunk_len() as u64;
        let mut inner = dest.inner.lock();
        if inner.chunks.contains_key(&chunk) {
            return false;
        }
        // LRU eviction against the node budget (read fresh: a tenant
        // map may have re-partitioned it since the last install).
        let capacity = self.capacity_bytes.load(Ordering::Acquire);
        while inner.resident_bytes + size > capacity {
            let Some(victim) = inner.lru.pop_front() else { break };
            if let Some(v) = inner.chunks.remove(&victim) {
                inner.resident_bytes -= v.view.chunk_len() as u64;
                self.metrics.evictions.inc();
            }
        }
        inner.chunks.insert(chunk, CachedChunk { view });
        inner.lru.push_back(chunk);
        inner.resident_bytes += size;
        true
    }

    /// Close one chunk's overlap window: forget the handoff entry, then
    /// evict the moved-out residency from the previous owner. Idempotent
    /// (racing fills of the same chunk may both get here). Counters for
    /// the fill must be incremented *before* calling this — the removal
    /// is what releases [`TaskCache::drain_moved`]'s wait.
    fn complete_handoff(&self, chunk: ChunkId, src: &Arc<NodeState>) {
        {
            let mut m = self.membership.write();
            m.handoff.remove(&chunk);
        }
        evict_residency(src, chunk);
        // Taken empty-handed (both guards above released): pairs with
        // the drain waiter's predicate check under the same mutex so a
        // completion can never slip between its check and its park.
        let _g = self.drain_mutex.lock();
        self.drain_cv.notify_all();
    }
}

/// Drop `chunk`'s residency on `st`, retiring its LRU slot and byte
/// accounting. No-op when the chunk is not resident there.
fn evict_residency(st: &NodeState, chunk: ChunkId) {
    let mut inner = st.inner.lock();
    if let Some(v) = inner.chunks.remove(&chunk) {
        inner.resident_bytes -= v.view.chunk_len() as u64;
        if let Some(pos) = inner.lru.iter().position(|&c| c == chunk) {
            inner.lru.remove(pos);
        }
    }
}

fn slice_file(c: &CachedChunk, meta: &FileMeta) -> Result<Bytes> {
    c.view.slice_payload(meta.offset, meta.length).map_err(|e| CacheError::Corrupt(e.to_string()))
}

/// Handle to a background prefetch sweep started by
/// [`TaskCache::prefetch_background`].
///
/// Dropping the handle without joining cancels the sweep cooperatively
/// (the sweep stops issuing chunk loads at the next opportunity) and
/// records a `cache.prefetch_cancelled` event in the cache's registry —
/// an abandoned handle can no longer leak a runaway warm-up thread.
pub struct PrefetchHandle {
    task: Option<TaskHandle<Result<LoadReport>>>,
    registry: Arc<Registry>,
    dataset: String,
}

impl PrefetchHandle {
    /// Wait for the sweep and take its report.
    pub fn join(mut self) -> Result<LoadReport> {
        match self.task.take() {
            Some(task) => match task.join() {
                Ok(report) => report,
                Err(e) => Err(CacheError::Backing(format!("prefetch sweep failed: {e}"))),
            },
            None => Ok(LoadReport::default()),
        }
    }

    /// Ask the sweep to stop at the next chunk boundary, without
    /// waiting. [`join`](PrefetchHandle::join) then returns the partial
    /// report.
    pub fn cancel(&self) {
        if let Some(task) = &self.task {
            task.cancel();
        }
    }

    /// Has the sweep finished (successfully or not)?
    pub fn is_finished(&self) -> bool {
        self.task.as_ref().is_some_and(TaskHandle::is_finished)
    }
}

impl Drop for PrefetchHandle {
    fn drop(&mut self) {
        if let Some(task) = self.task.take() {
            if !task.is_finished() {
                self.registry.event("cache.prefetch_cancelled", &[("dataset", &self.dataset)]);
            }
            // `TaskHandle`'s drop flips the cancel token; the sweep
            // winds down at its next chunk boundary.
            drop(task);
        }
    }
}

impl std::fmt::Debug for PrefetchHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PrefetchHandle").field("finished", &self.is_finished()).finish()
    }
}

impl<S> TaskCache<S> {
    /// Counter handles (cheap reads of individual metrics).
    pub fn metrics(&self) -> &CacheMetrics {
        &self.metrics
    }

    /// The registry holding this cache's counters and events.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// A consistent point-in-time snapshot of every `cache.*` metric.
    pub fn stats(&self) -> RegistrySnapshot {
        self.registry.snapshot()
    }
}

impl<S> std::fmt::Debug for TaskCache<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let m = self.membership.read();
        f.debug_struct("TaskCache")
            .field("dataset", &self.dataset)
            .field("nodes", &m.nodes.len())
            .field("epoch", &m.epoch)
            .field("chunks", &m.partition.chunk_count())
            .field("file_reads", &self.metrics.file_reads())
            .field("chunk_loads", &self.metrics.chunk_loads())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diesel_chunk::{ChunkBuilderConfig, ChunkIdGenerator, ChunkWriter};
    use diesel_kv::ShardedKv;
    use diesel_meta::MetaService;
    use diesel_store::MemObjectStore;

    /// Build a dataset of `files` files of `file_size` bytes in small
    /// chunks; returns (store, metadata service, file metas by name).
    fn dataset(
        files: usize,
        file_size: usize,
        chunk_size: usize,
    ) -> (Arc<MemObjectStore>, Vec<(String, FileMeta)>, Vec<ChunkId>) {
        let store = Arc::new(MemObjectStore::new());
        let svc = MetaService::new(Arc::new(ShardedKv::new()));
        let ids = ChunkIdGenerator::deterministic(1, 1, 100);
        let cfg = ChunkBuilderConfig { target_chunk_size: chunk_size, ..Default::default() };
        let mut w = ChunkWriter::new(cfg, &ids).with_clock(|| 1);
        for i in 0..files {
            w.add_file(&format!("f{i:04}"), &vec![(i % 251) as u8; file_size]).unwrap();
        }
        for sealed in w.finish() {
            svc.ingest_chunk("ds", &sealed.header, sealed.bytes.len() as u64).unwrap();
            store.put(&chunk_object_key("ds", sealed.header.id), sealed.bytes).unwrap();
        }
        let snap = svc.build_snapshot("ds").unwrap();
        let metas = snap.files.iter().map(|f| (f.path.clone(), f.meta)).collect();
        (store, metas, snap.chunks)
    }

    fn cache(
        store: Arc<MemObjectStore>,
        chunks: Vec<ChunkId>,
        nodes: usize,
        cap: u64,
        policy: CachePolicy,
    ) -> TaskCache<MemObjectStore> {
        TaskCache::new(
            Topology::uniform(nodes, 4).unwrap(),
            store,
            "ds",
            chunks,
            CacheConfig { capacity_bytes_per_node: cap, policy },
        )
        .unwrap()
    }

    #[test]
    fn oneshot_prefetch_then_all_hits() {
        let (store, metas, chunks) = dataset(60, 200, 2048);
        let c = cache(store, chunks.clone(), 3, 1 << 30, CachePolicy::Oneshot);
        let report = c.prefetch_all().unwrap();
        assert_eq!(report.chunks_loaded as usize, chunks.len());
        assert!((c.resident_fraction() - 1.0).abs() < 1e-9);
        for (name, meta) in &metas {
            let f = c.get_file(meta).unwrap();
            assert!(f.chunk_hit, "{name} should hit after prefetch");
            assert_eq!(f.data.len(), 200);
        }
        let snap = c.stats();
        assert_eq!(snap.counter("cache.file_reads{dataset=ds}"), 60);
        assert_eq!(snap.counter("cache.chunk_hits{dataset=ds}"), 60);
        assert_eq!(snap.counter("cache.chunk_loads{dataset=ds}") as usize, chunks.len());
    }

    #[test]
    fn on_demand_fills_during_first_epoch() {
        let (store, metas, chunks) = dataset(40, 100, 1024);
        let c = cache(store, chunks.clone(), 2, 1 << 30, CachePolicy::OnDemand);
        assert_eq!(c.resident_fraction(), 0.0);
        let mut first_epoch_misses = 0;
        for (_, meta) in &metas {
            if !c.get_file(meta).unwrap().chunk_hit {
                first_epoch_misses += 1;
            }
        }
        assert_eq!(first_epoch_misses as usize, chunks.len(), "one miss per chunk");
        // Second epoch: everything hits.
        for (_, meta) in &metas {
            assert!(c.get_file(meta).unwrap().chunk_hit);
        }
        assert_eq!(c.metrics().chunk_loads() as usize, chunks.len());
    }

    #[test]
    fn file_bytes_are_correct() {
        let (store, metas, chunks) = dataset(10, 333, 4096);
        let c = cache(store, chunks, 2, 1 << 30, CachePolicy::OnDemand);
        for (name, meta) in &metas {
            let i: usize = name[1..].parse().unwrap();
            let f = c.get_file(meta).unwrap();
            assert_eq!(f.data.as_ref(), &vec![(i % 251) as u8; 333][..], "content of {name}");
        }
    }

    #[test]
    fn node_failure_is_contained_and_recoverable() {
        let (store, metas, chunks) = dataset(60, 200, 2048);
        let c = cache(store, chunks.clone(), 3, 1 << 30, CachePolicy::Oneshot);
        c.prefetch_all().unwrap();
        c.kill_node(1);
        assert!(c.is_node_down(1));
        assert!(c.resident_fraction() < 1.0, "killed node dropped its chunks");

        let mut down_errors = 0;
        let mut served = 0;
        for (_, meta) in &metas {
            match c.get_file(meta) {
                Ok(_) => served += 1,
                Err(CacheError::NodeDown { node: 1 }) => down_errors += 1,
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        assert!(down_errors > 0, "node 1's share must fail");
        assert!(served > 0, "other nodes keep serving (containment)");

        // Chunk-wise recovery reloads exactly node 1's partition.
        let report = c.recover_node(1).unwrap();
        assert_eq!(report.chunks_loaded as usize, c.partition().chunks_of(1).len());
        for (_, meta) in &metas {
            assert!(c.get_file(meta).is_ok());
        }
        assert!((c.resident_fraction() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn memory_constrained_node_evicts_lru() {
        let (store, metas, chunks) = dataset(64, 512, 2048);
        // Budget fits only ~2 chunks per node.
        let c = cache(store, chunks.clone(), 2, 6000, CachePolicy::OnDemand);
        for (_, meta) in &metas {
            c.get_file(meta).unwrap();
        }
        assert!(c.metrics().evictions() > 0, "capacity pressure must evict");
        for node in 0..2 {
            assert!(c.node_resident_bytes(node) <= 6000);
        }
        // Reads still correct under thrashing.
        for (_, meta) in metas.iter().take(5) {
            assert_eq!(c.get_file(meta).unwrap().data.len(), 512);
        }
    }

    #[test]
    fn unknown_chunk_rejected() {
        let (store, _, chunks) = dataset(4, 64, 4096);
        let c = cache(store, chunks, 1, 1 << 30, CachePolicy::OnDemand);
        let foreign = FileMeta {
            chunk: ChunkIdGenerator::deterministic(9, 9, 9).next_id(),
            index_in_chunk: 0,
            offset: 0,
            length: 1,
            uploaded_ms: 0,
        };
        assert!(matches!(c.get_file(&foreign), Err(CacheError::UnknownChunk(_))));
    }

    #[test]
    fn corrupt_meta_range_rejected() {
        let (store, metas, chunks) = dataset(4, 64, 4096);
        let c = cache(store, chunks, 1, 1 << 30, CachePolicy::OnDemand);
        let mut meta = metas[0].1;
        meta.length = 1 << 30;
        assert!(matches!(c.get_file(&meta), Err(CacheError::Corrupt(_))));
    }

    #[test]
    fn concurrent_readers_share_one_chunk_load() {
        let (store, metas, chunks) = dataset(32, 256, 1 << 20);
        assert_eq!(chunks.len(), 1, "one big chunk expected");
        let c = Arc::new(cache(store, chunks, 1, 1 << 30, CachePolicy::OnDemand));
        let metas = Arc::new(metas);
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let c = c.clone();
                let metas = metas.clone();
                std::thread::spawn(move || {
                    for (_, meta) in metas.iter() {
                        c.get_file(meta).unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.metrics().chunk_loads(), 1, "chunk must be loaded exactly once");
        assert_eq!(c.metrics().file_reads(), 8 * 32);
    }

    #[test]
    fn background_prefetch_overlaps_with_reads() {
        let (store, metas, chunks) = dataset(80, 300, 2048);
        let c = Arc::new(cache(store, chunks.clone(), 2, 1 << 30, CachePolicy::Oneshot));
        let handle = c.prefetch_background();
        // Reads during warm-up: every one must succeed (miss ⇒ on-demand
        // load that de-duplicates with the prefetcher).
        for (_, meta) in &metas {
            assert_eq!(c.get_file(meta).unwrap().data.len(), 300);
        }
        let report = handle.join().unwrap();
        // The prefetcher and readers together load each chunk exactly once.
        assert_eq!(c.metrics().chunk_loads() as usize, chunks.len());
        assert!(report.chunks_loaded as usize <= chunks.len());
        assert!((c.resident_fraction() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn dropping_prefetch_handle_cancels_and_logs() {
        let (store, _, chunks) = dataset(40, 300, 1024);
        // Inline pool: the spawn runs synchronously, so the sweep is
        // finished by the time we drop — no cancel event.
        let c = Arc::new(
            cache(store.clone(), chunks.clone(), 2, 1 << 30, CachePolicy::Oneshot)
                .with_pool(diesel_exec::WorkPool::inline("t")),
        );
        let h = c.prefetch_background();
        assert!(h.is_finished());
        drop(h);
        assert!(c.stats().events.iter().all(|e| e.scope != "cache.prefetch_cancelled"));

        // Cancelling early stops the sweep at a chunk boundary; the
        // partial report never exceeds the partition.
        let c2 = Arc::new(cache(store, chunks, 2, 1 << 30, CachePolicy::Oneshot));
        let h = c2.prefetch_background();
        h.cancel();
        let report = h.join().unwrap();
        assert!(report.chunks_loaded <= c2.partition().chunk_count() as u64);

        // And a drop of an unfinished sweep logs the cancel event.
        let h = c2.prefetch_background();
        let was_finished = h.is_finished();
        drop(h);
        let logged = c2.stats().events.iter().any(|e| e.scope == "cache.prefetch_cancelled");
        assert!(
            was_finished || logged,
            "an unfinished sweep dropped without join must log cancellation"
        );
    }

    #[test]
    fn snapshot_batches_loads_with_bytes_and_logs_recovery() {
        let (store, metas, chunks) = dataset(30, 200, 2048);
        let c = cache(store, chunks, 2, 1 << 30, CachePolicy::OnDemand);
        for (_, meta) in &metas {
            c.get_file(meta).unwrap();
        }
        let snap = c.stats();
        assert!(
            snap.counter("cache.chunk_hits{dataset=ds}")
                <= snap.counter("cache.file_reads{dataset=ds}")
        );
        assert!(snap.counter("cache.chunk_loads{dataset=ds}") > 0);
        assert!(snap.counter("cache.bytes_loaded{dataset=ds}") > 0);
        c.kill_node(0);
        c.recover_node(0).unwrap();
        let snap = c.stats();
        assert_eq!(snap.counter("cache.recoveries{dataset=ds}"), 1);
        let scopes: Vec<&str> = snap.events.iter().map(|e| e.scope.as_str()).collect();
        assert_eq!(scopes, vec!["cache.kill_node", "cache.recover_node"]);
    }

    #[test]
    fn prefetch_counts_bytes() {
        let (store, _, chunks) = dataset(20, 100, 1024);
        let total_backing: u64 = store.total_bytes();
        let c = cache(store, chunks, 2, 1 << 30, CachePolicy::Oneshot);
        let report = c.prefetch_all().unwrap();
        assert_eq!(report.bytes_loaded, total_backing);
        // Prefetch again: nothing new to load.
        let again = c.prefetch_all().unwrap();
        assert_eq!(again, LoadReport::default());
    }

    #[test]
    fn grow_hands_off_warm_without_touching_the_store() {
        let (store, metas, chunks) = dataset(60, 200, 1024);
        let c = cache(store, chunks.clone(), 4, 1 << 30, CachePolicy::Oneshot);
        c.prefetch_all().unwrap();
        let loads_before = c.metrics().chunk_loads();
        assert_eq!(c.membership_epoch(), 0);

        let report = c.resize(8).unwrap();
        assert_eq!(report.epoch, 1);
        assert_eq!(c.membership_epoch(), 1);
        assert_eq!(c.members(), (0..8).collect::<Vec<_>>());
        assert!(report.chunks_moved > 0, "a doubling must move chunks");
        assert!(report.chunks_moved as usize <= chunks.len(), "movement bounded by the dataset");
        assert_eq!(
            report.peer_warm_hits, report.chunks_moved,
            "fully warm cache: every move is a peer handoff"
        );
        assert_eq!(report.store_fallbacks, 0);
        assert_eq!(
            c.metrics().chunk_loads(),
            loads_before,
            "warm handoff must not touch the backing store"
        );
        // The cache still serves every file, all hits, from the new
        // placement.
        for (_, meta) in &metas {
            assert!(c.get_file(meta).unwrap().chunk_hit);
        }
        assert!((c.resident_fraction() - 1.0).abs() < 1e-9, "overlap windows all closed");
    }

    #[test]
    fn shrink_drains_the_leavers_chunks_to_survivors() {
        let (store, metas, chunks) = dataset(60, 200, 1024);
        let c = cache(store, chunks, 4, 1 << 30, CachePolicy::Oneshot);
        c.prefetch_all().unwrap();
        let leaver_share = c.partition().chunks_of(3).len() as u64;
        let report = c.remove_node(3).unwrap();
        assert_eq!(c.members(), vec![0, 1, 2]);
        assert_eq!(report.chunks_moved, leaver_share, "a shrink moves exactly the leaver's share");
        assert_eq!(report.peer_warm_hits, report.chunks_moved, "drained from the leaver's memory");
        for (_, meta) in &metas {
            let f = c.get_file(meta).unwrap();
            assert!(f.chunk_hit);
            assert!(f.owner_node < 3, "nothing routes to the retired node");
        }
        // The retired node is gone from the membership entirely.
        assert_eq!(c.node_resident_bytes(3), 0);
        assert!(matches!(
            c.resolve_owner(ChunkIdGenerator::deterministic(9, 9, 9).next_id()),
            Err(CacheError::UnknownChunk(_))
        ));
    }

    #[test]
    fn cold_moves_fall_back_to_the_store() {
        let (store, metas, chunks) = dataset(60, 200, 1024);
        // OnDemand and never read: nothing is resident anywhere.
        let c = cache(store, chunks, 4, 1 << 30, CachePolicy::OnDemand);
        let report = c.resize(8).unwrap();
        assert!(report.chunks_moved > 0);
        assert_eq!(report.peer_warm_hits, 0, "cold cache has no warm source");
        assert_eq!(
            report.store_fallbacks, report.chunks_moved,
            "every move falls back to the authoritative store"
        );
        for (_, meta) in &metas {
            assert!(c.get_file(meta).is_ok());
        }
    }

    #[test]
    fn stale_owner_route_is_rejected_then_retried() {
        let (store, metas, chunks) = dataset(20, 100, 1024);
        let c = cache(store, chunks, 4, 1 << 30, CachePolicy::Oneshot);
        c.prefetch_all().unwrap();
        let meta = &metas[0].1;
        let (owner, epoch) = c.resolve_owner(meta.chunk).unwrap();
        // A membership transition lands between resolve and fetch.
        c.resize(8).unwrap();
        match c.get_file_routed(meta, owner, epoch) {
            Err(CacheError::StaleOwner { epoch: current }) => assert_eq!(current, 1),
            other => panic!("stale route must be rejected, got {other:?}"),
        }
        assert!(c.metrics().stale_owner_retries() >= 1);
        // The self-resolving read path retries internally and succeeds.
        assert!(c.get_file(meta).unwrap().chunk_hit);
    }

    #[test]
    fn identical_membership_is_a_noop() {
        let (store, _, chunks) = dataset(10, 100, 1024);
        let c = cache(store, chunks, 4, 1 << 30, CachePolicy::Oneshot);
        c.prefetch_all().unwrap();
        let report = c.resize(4).unwrap();
        assert_eq!(report.epoch, 0, "same ring ⇒ no epoch bump");
        assert_eq!(report.chunks_moved, 0);
    }

    #[test]
    fn grow_shrink_roundtrip_restores_placement() {
        let (store, metas, chunks) = dataset(60, 200, 1024);
        let c = cache(store, chunks, 4, 1 << 30, CachePolicy::Oneshot);
        c.prefetch_all().unwrap();
        let before = c.partition();
        let up = c.resize(8).unwrap();
        let down = c.resize(4).unwrap();
        assert_eq!(down.epoch, 2);
        let after = c.partition();
        for (_, meta) in &metas {
            assert_eq!(before.owner_of(meta.chunk), after.owner_of(meta.chunk));
            assert!(c.get_file(meta).unwrap().chunk_hit, "roundtrip keeps the cache warm");
        }
        assert_eq!(up.chunks_moved, down.chunks_moved, "the same chunks move back");
        assert_eq!(down.peer_warm_hits, down.chunks_moved);
        assert!((c.resident_fraction() - 1.0).abs() < 1e-9);
    }

    /// A `MemObjectStore` whose read path can be switched to fail — the
    /// deterministic stand-in for a transient backing-store outage mid
    /// rebalance sweep.
    struct TogglingStore {
        inner: Arc<MemObjectStore>,
        fail: AtomicBool,
    }

    impl TogglingStore {
        fn new(inner: Arc<MemObjectStore>) -> Self {
            TogglingStore { inner, fail: AtomicBool::new(false) }
        }

        fn set_fail(&self, on: bool) {
            self.fail.store(on, Ordering::Release);
        }
    }

    impl diesel_store::ObjectStore for TogglingStore {
        fn put(&self, key: &str, value: Bytes) -> diesel_store::Result<()> {
            self.inner.put(key, value)
        }
        fn get(&self, key: &str) -> diesel_store::Result<Bytes> {
            if self.fail.load(Ordering::Acquire) {
                return Err(diesel_store::StoreError::Io(format!("injected outage reading {key}")));
            }
            self.inner.get(key)
        }
        fn delete(&self, key: &str) -> diesel_store::Result<bool> {
            self.inner.delete(key)
        }
        fn contains(&self, key: &str) -> bool {
            self.inner.contains(key)
        }
        fn list_prefix(&self, prefix: &str) -> Vec<String> {
            self.inner.list_prefix(prefix)
        }
        fn size_of(&self, key: &str) -> Option<usize> {
            self.inner.size_of(key)
        }
        fn len(&self) -> usize {
            self.inner.len()
        }
        fn total_bytes(&self) -> u64 {
            self.inner.total_bytes()
        }
    }

    #[test]
    fn stale_handoff_window_cannot_wedge_the_next_resize() {
        // Regression: an interrupted transition can leave a chunk with
        // an open handoff window *and* bytes already resident on the
        // node a later transition moves it back to. The sweep's fill
        // then returns `Resident` without ever completing the window,
        // and the old drain loop spun forever on the orphaned entry
        // (holding `cache.rebalance`, wedging every future transition).
        let (store, metas, chunks) = dataset(60, 200, 1024);
        let c = cache(store, chunks, 4, 1 << 30, CachePolicy::Oneshot);
        c.prefetch_all().unwrap();
        let before = c.partition();
        c.resize(8).unwrap();
        // Pick a chunk the coming shrink will move back: owner differs
        // between the 4-node and 8-node rings (the roundtrip property
        // returns it to its 4-node owner).
        let (chunk, back_to) = before
            .chunks()
            .iter()
            .map(|&ch| (ch, before.owner_of(ch).unwrap()))
            .find(|&(ch, owner)| c.partition().owner_of(ch) != Some(owner))
            .expect("a 4→8 grow must move some chunk");
        // Forge the interrupted state: the chunk's bytes already sit on
        // the future destination, and a leftover handoff entry points
        // at some third node that no fill will ever touch.
        {
            let m = c.membership.read();
            let cur_owner = m.partition.owner_of(chunk).unwrap();
            let view = m.nodes[&cur_owner].inner.lock().chunks[&chunk].view.clone();
            let dest = Arc::clone(&m.nodes[&back_to]);
            let orphan_src = Arc::clone(&m.nodes[&7]);
            drop(m);
            assert!(c.install_chunk(&dest, chunk, view));
            c.membership.write().handoff.insert(chunk, orphan_src);
        }
        // Old code: this call never returns. New code: Phase 1 closes
        // the window under the write lock and the shrink completes.
        let report = c.resize(4).unwrap();
        assert!(report.chunks_moved > 0);
        assert_eq!(c.pending_handoffs(), 0, "no orphaned handoff windows survive");
        assert!((c.resident_fraction() - 1.0).abs() < 1e-9, "no double residency either");
        for (_, meta) in &metas {
            assert!(c.get_file(meta).unwrap().chunk_hit);
        }
        // And the membership plane still transitions freely afterwards.
        c.resize(8).unwrap();
        c.resize(4).unwrap();
        assert_eq!(c.pending_handoffs(), 0);
    }

    #[test]
    fn failed_sweep_is_repaired_by_retrying_the_same_resize() {
        let (mem, metas, chunks) = dataset(60, 200, 1024);
        let store = Arc::new(TogglingStore::new(mem));
        let c = TaskCache::new(
            Topology::uniform(2, 4).unwrap(),
            Arc::clone(&store),
            "ds",
            chunks.clone(),
            CacheConfig { capacity_bytes_per_node: 1 << 30, policy: CachePolicy::OnDemand },
        )
        .unwrap();
        // Warm half the chunks so the failing sweep is mixed: warm
        // moves succeed peer-to-peer, cold moves hit the dead store.
        let warm: std::collections::HashSet<ChunkId> =
            chunks.iter().copied().take(chunks.len() / 2).collect();
        for (_, meta) in &metas {
            if warm.contains(&meta.chunk) {
                c.get_file(meta).unwrap();
            }
        }
        store.set_fail(true);
        let err = c.resize(4).expect_err("cold fallbacks must surface the store outage");
        assert!(matches!(err, CacheError::Backing(_)), "got {err:?}");
        // The epoch is installed; the unfinished chunks keep their
        // windows open and are reported by `pending_handoffs`.
        assert_eq!(c.membership_epoch(), 1);
        let open = c.pending_handoffs();
        assert!(open > 0, "a failed sweep leaves its unfinished windows open");
        // Retrying the *same* membership repairs instead of no-opping.
        store.set_fail(false);
        let report = c.resize(4).unwrap();
        assert_eq!(report.epoch, 1, "repair does not bump the epoch");
        assert_eq!(report.chunks_moved as usize, open, "repair covers exactly the open windows");
        assert_eq!(report.store_fallbacks, report.chunks_moved, "unfinished chunks were all cold");
        assert_eq!(c.pending_handoffs(), 0);
        assert!(c.resident_fraction() <= 1.0 + 1e-9, "no ghost residencies after repair");
        // A second retry is a true no-op.
        let again = c.resize(4).unwrap();
        assert_eq!(again.chunks_moved, 0);
        for (name, meta) in &metas {
            let i: usize = name[1..].parse().unwrap();
            assert_eq!(c.get_file(meta).unwrap().data.as_ref(), &vec![(i % 251) as u8; 200][..]);
        }
    }

    #[test]
    fn failed_sweep_windows_also_heal_through_later_transitions() {
        // The other two repair routes: a failed grow's windows are
        // absorbed by a subsequent shrink (the chunks move back onto
        // nodes still holding them), and on-demand reads complete
        // windows chunk-wise.
        let (mem, metas, chunks) = dataset(60, 200, 1024);
        let store = Arc::new(TogglingStore::new(mem));
        let c = TaskCache::new(
            Topology::uniform(2, 4).unwrap(),
            Arc::clone(&store),
            "ds",
            chunks,
            CacheConfig { capacity_bytes_per_node: 1 << 30, policy: CachePolicy::OnDemand },
        )
        .unwrap();
        store.set_fail(true);
        assert!(c.resize(4).is_err(), "fully cold grow against a dead store must fail");
        assert!(c.pending_handoffs() > 0);
        store.set_fail(false);
        // Shrinking back moves every unfinished chunk onto its original
        // owner; the open windows must not wedge or double-count.
        let report = c.resize(2).unwrap();
        assert_eq!(report.epoch, 2);
        assert_eq!(c.pending_handoffs(), 0, "the shrink absorbs the failed grow's windows");
        for (_, meta) in &metas {
            c.get_file(meta).unwrap();
        }
        assert!(c.resident_fraction() <= 1.0 + 1e-9);
    }
}
