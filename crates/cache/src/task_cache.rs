//! The task-grained distributed cache proper.
//!
//! One [`TaskCache`] exists per DLT task. It holds the task's dataset in
//! per-node chunk caches: any client resolves a file's chunk owner from
//! the shared [`ChunkPartition`] and fetches the file in one hop. Chunks
//! are loaded from the backing object store *whole* — the property that
//! makes warm-up and recovery fast (Fig. 11b).
//!
//! Counters live in a `diesel-obs` registry under `cache.*`; related
//! updates (a read and its hit, a load and its bytes) go through
//! [`diesel_obs::Registry::batch`] so a snapshot never shows one without
//! the other.

use diesel_exec::{CancelToken, TaskHandle, WorkPool};
use diesel_obs::{trace, Counter, Registry, RegistrySnapshot};
use diesel_util::Mutex;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use diesel_chunk::{ChunkHeader, ChunkId, ChunkView};
use diesel_meta::recovery::chunk_object_key;
use diesel_meta::FileMeta;
use diesel_store::{Bytes, ObjectStore};

use crate::partition::ChunkPartition;
use crate::topology::Topology;
use crate::{CacheError, Result};

/// When the cache pulls chunks from the backing store (§4.2 "Cache
/// Policies").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CachePolicy {
    /// Pull the whole partition right after registration, while the user
    /// is still loading checkpoints — hides first-epoch latency.
    Oneshot,
    /// Pull each chunk on its first miss; the first epoch is slower, the
    /// rest are fully cached.
    OnDemand,
}

/// Cache construction parameters.
#[derive(Debug, Clone)]
pub struct CacheConfig {
    /// Memory budget per node for cached chunks.
    pub capacity_bytes_per_node: u64,
    /// Fill policy.
    pub policy: CachePolicy,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig { capacity_bytes_per_node: 8 << 30, policy: CachePolicy::OnDemand }
    }
}

/// Handles into the registry for the cache's `cache.*` counters.
#[derive(Debug, Clone)]
pub struct CacheMetrics {
    file_reads: Counter,
    chunk_hits: Counter,
    chunk_loads: Counter,
    bytes_loaded: Counter,
    evictions: Counter,
    recoveries: Counter,
}

impl CacheMetrics {
    /// Register the cache counters (`cache.file_reads`,
    /// `cache.chunk_hits`, `cache.chunk_loads`, `cache.bytes_loaded`,
    /// `cache.evictions`, `cache.recoveries`) in `registry`.
    pub fn new(registry: &Registry) -> Self {
        CacheMetrics {
            file_reads: registry.counter("cache.file_reads", &[]),
            chunk_hits: registry.counter("cache.chunk_hits", &[]),
            chunk_loads: registry.counter("cache.chunk_loads", &[]),
            bytes_loaded: registry.counter("cache.bytes_loaded", &[]),
            evictions: registry.counter("cache.evictions", &[]),
            recoveries: registry.counter("cache.recoveries", &[]),
        }
    }

    /// File reads served.
    pub fn file_reads(&self) -> u64 {
        self.file_reads.get()
    }

    /// File reads whose chunk was already resident on its owner.
    pub fn chunk_hits(&self) -> u64 {
        self.chunk_hits.get()
    }

    /// Chunks loaded from the backing store.
    pub fn chunk_loads(&self) -> u64 {
        self.chunk_loads.get()
    }

    /// Bytes loaded from the backing store.
    pub fn bytes_loaded(&self) -> u64 {
        self.bytes_loaded.get()
    }

    /// Chunks evicted for capacity.
    pub fn evictions(&self) -> u64 {
        self.evictions.get()
    }

    /// Node recoveries completed (Fig. 11b sweeps).
    pub fn recoveries(&self) -> u64 {
        self.recoveries.get()
    }
}

/// Result of a prefetch/recovery sweep.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LoadReport {
    /// Chunks loaded.
    pub chunks_loaded: u64,
    /// Bytes loaded.
    pub bytes_loaded: u64,
}

/// A file fetched through the cache, with routing info for accounting.
#[derive(Debug, Clone)]
pub struct Fetched {
    /// The file content.
    pub data: Bytes,
    /// Node that served it.
    pub owner_node: usize,
    /// Whether the chunk was already resident (false ⇒ a backing-store
    /// chunk load happened on this access).
    pub chunk_hit: bool,
}

/// A resident chunk: an owned [`ChunkView`] over the loaded buffer.
/// Every file served from it is a `Bytes` sub-slice of the chunk's one
/// allocation — cache hits never copy payload (DESIGN.md §11).
#[derive(Debug)]
struct CachedChunk {
    view: ChunkView,
}

#[derive(Debug, Default)]
struct NodeInner {
    chunks: HashMap<ChunkId, CachedChunk>,
    lru: VecDeque<ChunkId>,
    resident_bytes: u64,
}

#[derive(Debug)]
struct NodeState {
    down: AtomicBool,
    inner: Mutex<NodeInner>,
}

impl Default for NodeState {
    fn default() -> Self {
        NodeState {
            down: AtomicBool::new(false),
            inner: Mutex::named("cache.node", NodeInner::default()),
        }
    }
}

/// The distributed cache of one DLT task.
pub struct TaskCache<S> {
    topology: Topology,
    partition: ChunkPartition,
    backing: Arc<S>,
    dataset: String,
    config: CacheConfig,
    verify_on_load: AtomicBool,
    nodes: Vec<NodeState>,
    registry: Arc<Registry>,
    metrics: CacheMetrics,
    pool: WorkPool,
}

impl<S: ObjectStore> TaskCache<S> {
    /// Build the cache for `dataset`, whose chunks are `chunks`, across
    /// the nodes of `topology`, with a private registry.
    pub fn new(
        topology: Topology,
        backing: Arc<S>,
        dataset: impl Into<String>,
        chunks: Vec<ChunkId>,
        config: CacheConfig,
    ) -> Self {
        Self::with_registry(
            topology,
            backing,
            dataset,
            chunks,
            config,
            Arc::new(Registry::default()),
        )
    }

    /// Build the cache with its counters in a shared `registry`.
    pub fn with_registry(
        topology: Topology,
        backing: Arc<S>,
        dataset: impl Into<String>,
        chunks: Vec<ChunkId>,
        config: CacheConfig,
        registry: Arc<Registry>,
    ) -> Self {
        let p = topology.node_count();
        let metrics = CacheMetrics::new(&registry);
        TaskCache {
            topology,
            partition: ChunkPartition::new(chunks, p),
            backing,
            dataset: dataset.into(),
            config,
            verify_on_load: AtomicBool::new(false),
            nodes: (0..p).map(|_| NodeState::default()).collect(),
            registry,
            metrics,
            pool: diesel_exec::global().clone(),
        }
    }

    /// Run this cache's prefetch/recovery sweeps on `pool` instead of
    /// the process-wide [`diesel_exec::global()`] pool (e.g. an inline
    /// pool for deterministic tests).
    pub fn with_pool(mut self, pool: WorkPool) -> Self {
        self.pool = pool;
        self
    }

    /// Verify every per-file CRC when a chunk is loaded from the
    /// backing store (catches storage-layer corruption at the cost of
    /// one checksum pass per load). Off by default: the header CRC is
    /// always checked.
    pub fn set_verify_on_load(&self, on: bool) {
        self.verify_on_load.store(on, Ordering::Release);
    }

    /// The task topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The chunk partition map.
    pub fn partition(&self) -> &ChunkPartition {
        &self.partition
    }

    /// Oneshot prefetch: fan chunk loads across the work pool, every
    /// node's partition at once (call right after task registration;
    /// §4.2). The report — and the first error, if any — is identical
    /// to the serial node-by-node, chunk-by-chunk sweep for any worker
    /// count; concurrent on-demand readers de-duplicate against the
    /// sweep chunk-wise.
    pub fn prefetch_all(&self) -> Result<LoadReport> {
        self.prefetch_sweep(None)
    }

    fn prefetch_sweep(&self, cancel: Option<&CancelToken>) -> Result<LoadReport> {
        // Fail fast on downed nodes, like the serial sweep did at the
        // start of each node's partition.
        for node in 0..self.nodes.len() {
            if self.is_node_down(node) {
                return Err(CacheError::NodeDown { node });
            }
        }
        let pairs: Vec<(usize, ChunkId)> = (0..self.nodes.len())
            .flat_map(|node| self.partition.chunks_of(node).iter().map(move |&c| (node, c)))
            .collect();
        let loads = self.pool.try_map(pairs, |_, (node, chunk)| {
            if cancel.is_some_and(CancelToken::is_cancelled) {
                return Ok((false, 0));
            }
            self.ensure_chunk(node, chunk)
        })?;
        let mut report = LoadReport::default();
        for (loaded, bytes) in loads {
            if loaded {
                report.chunks_loaded += 1;
                report.bytes_loaded += bytes;
            }
        }
        Ok(report)
    }

    /// Oneshot prefetch in the background: "the DIESEL client caches the
    /// dataset in the background when the user loads the training models
    /// from disk" (§4.2). Reads proceed concurrently (misses load on
    /// demand and de-duplicate against the sweep). Unlike a raw
    /// `JoinHandle`, dropping the returned handle cancels the sweep
    /// cooperatively instead of leaking it.
    pub fn prefetch_background(self: &Arc<Self>) -> PrefetchHandle
    where
        S: 'static,
    {
        let me = Arc::clone(self);
        let task = self.pool.spawn_cancellable(move |token| me.prefetch_sweep(Some(token)));
        PrefetchHandle { task: Some(task), registry: Arc::clone(&self.registry) }
    }

    /// Fraction of the dataset's chunks currently resident (the "cache
    /// hit ratio" axis of Figs. 6/11b).
    pub fn resident_fraction(&self) -> f64 {
        let total = self.partition.chunk_count();
        if total == 0 {
            return 1.0;
        }
        let resident: usize = self.nodes.iter().map(|n| n.inner.lock().chunks.len()).sum();
        resident as f64 / total as f64
    }

    /// The node state for `node`, or a `NodeDown` error when no such
    /// node exists in the topology.
    fn node(&self, node: usize) -> Result<&NodeState> {
        self.nodes.get(node).ok_or(CacheError::NodeDown { node })
    }

    /// Bytes resident on one node (0 for out-of-range nodes).
    pub fn node_resident_bytes(&self, node: usize) -> u64 {
        self.nodes.get(node).map(|n| n.inner.lock().resident_bytes).unwrap_or(0)
    }

    /// Kill a node: its cached chunks are gone and requests routed to it
    /// fail until [`TaskCache::recover_node`].
    pub fn kill_node(&self, node: usize) {
        if let Some(st) = self.nodes.get(node) {
            st.down.store(true, Ordering::Release);
            *st.inner.lock() = NodeInner::default();
            self.registry.event("cache.kill_node", &[("node", &node.to_string())]);
        }
    }

    /// Is `node` down?
    pub fn is_node_down(&self, node: usize) -> bool {
        self.nodes.get(node).is_some_and(|n| n.down.load(Ordering::Acquire))
    }

    /// Bring a node back and reload its partition chunk-wise from the
    /// backing store. Returns what was loaded (the Fig. 11b recovery
    /// measurement).
    pub fn recover_node(&self, node: usize) -> Result<LoadReport> {
        self.node(node)?.down.store(false, Ordering::Release);
        let report = self.load_partition(node)?;
        self.metrics.recoveries.inc();
        self.registry.event(
            "cache.recover_node",
            &[("node", &node.to_string()), ("chunks", &report.chunks_loaded.to_string())],
        );
        Ok(report)
    }

    /// Reload one node's partition, chunk loads fanned across the pool
    /// (the Fig. 11b chunk-wise recovery sweep).
    fn load_partition(&self, node: usize) -> Result<LoadReport> {
        if self.is_node_down(node) {
            return Err(CacheError::NodeDown { node });
        }
        // diesel-lint: allow(R6) chunk-id list, not payload bytes
        let chunks: Vec<ChunkId> = self.partition.chunks_of(node).to_vec();
        let loads = self.pool.try_map(chunks, |_, chunk| self.ensure_chunk(node, chunk))?;
        let mut report = LoadReport::default();
        for (loaded, bytes) in loads {
            if loaded {
                report.chunks_loaded += 1;
                report.bytes_loaded += bytes;
            }
        }
        Ok(report)
    }

    /// Read a whole file through the cache.
    pub fn get_file(&self, meta: &FileMeta) -> Result<Fetched> {
        let mut span = if trace::active() {
            let chunk = meta.chunk.encode();
            trace::span("cache.get", &[("chunk", chunk.as_str())])
        } else {
            trace::SpanGuard::default()
        };
        let Some(owner) = self.partition.owner_of(meta.chunk) else {
            self.metrics.file_reads.inc();
            span.label("outcome", "unknown_chunk");
            return Err(CacheError::UnknownChunk(meta.chunk.encode()));
        };
        if self.is_node_down(owner) {
            self.metrics.file_reads.inc();
            span.label("outcome", "node_down");
            return Err(CacheError::NodeDown { node: owner });
        }
        // Fast path: chunk resident on its owner. The read and its hit
        // are one batch so a snapshot never sees hits > reads.
        {
            let inner = self.node(owner)?.inner.lock();
            if let Some(c) = inner.chunks.get(&meta.chunk) {
                self.registry.batch(|| {
                    self.metrics.file_reads.inc();
                    self.metrics.chunk_hits.inc();
                });
                let data = slice_file(c, meta)?;
                span.label("outcome", "hit");
                return Ok(Fetched { data, owner_node: owner, chunk_hit: true });
            }
        }
        // Miss: load the whole chunk (any policy — Oneshot may have
        // evicted under memory pressure), then serve.
        self.metrics.file_reads.inc();
        span.label("outcome", "miss");
        self.ensure_chunk(owner, meta.chunk)?;
        let inner = self.node(owner)?.inner.lock();
        let c = inner
            .chunks
            .get(&meta.chunk)
            .ok_or_else(|| CacheError::UnknownChunk(meta.chunk.encode()))?;
        let data = slice_file(c, meta)?;
        Ok(Fetched { data, owner_node: owner, chunk_hit: false })
    }

    /// Ensure `chunk` is resident on `node`; returns `(loaded now?,
    /// chunk bytes)`.
    fn ensure_chunk(&self, node: usize, chunk: ChunkId) -> Result<(bool, u64)> {
        {
            let inner = self.node(node)?.inner.lock();
            if inner.chunks.contains_key(&chunk) {
                return Ok((false, 0));
            }
        }
        let key = chunk_object_key(&self.dataset, chunk);
        // The miss path's fetch from the backing store (the peer/load
        // leg of a cache read) is its own child span.
        let bytes = {
            let _span = if trace::active() {
                trace::span("store.get", &[("key", key.as_str())])
            } else {
                trace::SpanGuard::default()
            };
            self.backing.get(&key).map_err(|e| CacheError::Backing(e.to_string()))?
        };
        // Decode the header once per load; the view reuses it for every
        // read served from this residency.
        let header = ChunkHeader::decode(&bytes).map_err(|e| CacheError::Corrupt(e.to_string()))?;
        let view =
            ChunkView::from_parts(bytes, header).map_err(|e| CacheError::Corrupt(e.to_string()))?;
        if self.verify_on_load.load(Ordering::Acquire) {
            let bad = view.verify_all();
            if !bad.is_empty() {
                return Err(CacheError::Corrupt(format!(
                    "chunk {chunk} holds corrupt files: {bad:?}"
                )));
            }
        }
        let size = view.chunk_len() as u64;
        let mut inner = self.node(node)?.inner.lock();
        if inner.chunks.contains_key(&chunk) {
            return Ok((false, 0)); // raced with another client
        }
        // LRU eviction against the node budget.
        while inner.resident_bytes + size > self.config.capacity_bytes_per_node {
            let Some(victim) = inner.lru.pop_front() else { break };
            if let Some(v) = inner.chunks.remove(&victim) {
                inner.resident_bytes -= v.view.chunk_len() as u64;
                self.metrics.evictions.inc();
            }
        }
        inner.chunks.insert(chunk, CachedChunk { view });
        inner.lru.push_back(chunk);
        inner.resident_bytes += size;
        drop(inner);
        // A load and its bytes are one batch: a snapshot never shows a
        // chunk counted without its bytes (the tearing the old
        // `CacheStats::snapshot` allowed).
        self.registry.batch(|| {
            self.metrics.chunk_loads.inc();
            self.metrics.bytes_loaded.add(size);
        });
        Ok((true, size))
    }
}

fn slice_file(c: &CachedChunk, meta: &FileMeta) -> Result<Bytes> {
    c.view.slice_payload(meta.offset, meta.length).map_err(|e| CacheError::Corrupt(e.to_string()))
}

/// Handle to a background prefetch sweep started by
/// [`TaskCache::prefetch_background`].
///
/// Dropping the handle without joining cancels the sweep cooperatively
/// (the sweep stops issuing chunk loads at the next opportunity) and
/// records a `cache.prefetch_cancelled` event in the cache's registry —
/// an abandoned handle can no longer leak a runaway warm-up thread.
pub struct PrefetchHandle {
    task: Option<TaskHandle<Result<LoadReport>>>,
    registry: Arc<Registry>,
}

impl PrefetchHandle {
    /// Wait for the sweep and take its report.
    pub fn join(mut self) -> Result<LoadReport> {
        match self.task.take() {
            Some(task) => match task.join() {
                Ok(report) => report,
                Err(e) => Err(CacheError::Backing(format!("prefetch sweep failed: {e}"))),
            },
            None => Ok(LoadReport::default()),
        }
    }

    /// Ask the sweep to stop at the next chunk boundary, without
    /// waiting. [`join`](PrefetchHandle::join) then returns the partial
    /// report.
    pub fn cancel(&self) {
        if let Some(task) = &self.task {
            task.cancel();
        }
    }

    /// Has the sweep finished (successfully or not)?
    pub fn is_finished(&self) -> bool {
        self.task.as_ref().is_some_and(TaskHandle::is_finished)
    }
}

impl Drop for PrefetchHandle {
    fn drop(&mut self) {
        if let Some(task) = self.task.take() {
            if !task.is_finished() {
                self.registry.event("cache.prefetch_cancelled", &[]);
            }
            // `TaskHandle`'s drop flips the cancel token; the sweep
            // winds down at its next chunk boundary.
            drop(task);
        }
    }
}

impl std::fmt::Debug for PrefetchHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PrefetchHandle").field("finished", &self.is_finished()).finish()
    }
}

impl<S> TaskCache<S> {
    /// Counter handles (cheap reads of individual metrics).
    pub fn metrics(&self) -> &CacheMetrics {
        &self.metrics
    }

    /// The registry holding this cache's counters and events.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// A consistent point-in-time snapshot of every `cache.*` metric.
    pub fn stats(&self) -> RegistrySnapshot {
        self.registry.snapshot()
    }
}

impl<S> std::fmt::Debug for TaskCache<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TaskCache")
            .field("dataset", &self.dataset)
            .field("nodes", &self.nodes.len())
            .field("chunks", &self.partition.chunk_count())
            .field("file_reads", &self.metrics.file_reads())
            .field("chunk_loads", &self.metrics.chunk_loads())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diesel_chunk::{ChunkBuilderConfig, ChunkIdGenerator, ChunkWriter};
    use diesel_kv::ShardedKv;
    use diesel_meta::MetaService;
    use diesel_store::MemObjectStore;

    /// Build a dataset of `files` files of `file_size` bytes in small
    /// chunks; returns (store, metadata service, file metas by name).
    fn dataset(
        files: usize,
        file_size: usize,
        chunk_size: usize,
    ) -> (Arc<MemObjectStore>, Vec<(String, FileMeta)>, Vec<ChunkId>) {
        let store = Arc::new(MemObjectStore::new());
        let svc = MetaService::new(Arc::new(ShardedKv::new()));
        let ids = ChunkIdGenerator::deterministic(1, 1, 100);
        let cfg = ChunkBuilderConfig { target_chunk_size: chunk_size, ..Default::default() };
        let mut w = ChunkWriter::new(cfg, &ids).with_clock(|| 1);
        for i in 0..files {
            w.add_file(&format!("f{i:04}"), &vec![(i % 251) as u8; file_size]).unwrap();
        }
        for sealed in w.finish() {
            svc.ingest_chunk("ds", &sealed.header, sealed.bytes.len() as u64).unwrap();
            store.put(&chunk_object_key("ds", sealed.header.id), sealed.bytes).unwrap();
        }
        let snap = svc.build_snapshot("ds").unwrap();
        let metas = snap.files.iter().map(|f| (f.path.clone(), f.meta)).collect();
        (store, metas, snap.chunks)
    }

    fn cache(
        store: Arc<MemObjectStore>,
        chunks: Vec<ChunkId>,
        nodes: usize,
        cap: u64,
        policy: CachePolicy,
    ) -> TaskCache<MemObjectStore> {
        TaskCache::new(
            Topology::uniform(nodes, 4),
            store,
            "ds",
            chunks,
            CacheConfig { capacity_bytes_per_node: cap, policy },
        )
    }

    #[test]
    fn oneshot_prefetch_then_all_hits() {
        let (store, metas, chunks) = dataset(60, 200, 2048);
        let c = cache(store, chunks.clone(), 3, 1 << 30, CachePolicy::Oneshot);
        let report = c.prefetch_all().unwrap();
        assert_eq!(report.chunks_loaded as usize, chunks.len());
        assert!((c.resident_fraction() - 1.0).abs() < 1e-9);
        for (name, meta) in &metas {
            let f = c.get_file(meta).unwrap();
            assert!(f.chunk_hit, "{name} should hit after prefetch");
            assert_eq!(f.data.len(), 200);
        }
        let snap = c.stats();
        assert_eq!(snap.counter("cache.file_reads"), 60);
        assert_eq!(snap.counter("cache.chunk_hits"), 60);
        assert_eq!(snap.counter("cache.chunk_loads") as usize, chunks.len());
    }

    #[test]
    fn on_demand_fills_during_first_epoch() {
        let (store, metas, chunks) = dataset(40, 100, 1024);
        let c = cache(store, chunks.clone(), 2, 1 << 30, CachePolicy::OnDemand);
        assert_eq!(c.resident_fraction(), 0.0);
        let mut first_epoch_misses = 0;
        for (_, meta) in &metas {
            if !c.get_file(meta).unwrap().chunk_hit {
                first_epoch_misses += 1;
            }
        }
        assert_eq!(first_epoch_misses as usize, chunks.len(), "one miss per chunk");
        // Second epoch: everything hits.
        for (_, meta) in &metas {
            assert!(c.get_file(meta).unwrap().chunk_hit);
        }
        assert_eq!(c.metrics().chunk_loads() as usize, chunks.len());
    }

    #[test]
    fn file_bytes_are_correct() {
        let (store, metas, chunks) = dataset(10, 333, 4096);
        let c = cache(store, chunks, 2, 1 << 30, CachePolicy::OnDemand);
        for (name, meta) in &metas {
            let i: usize = name[1..].parse().unwrap();
            let f = c.get_file(meta).unwrap();
            assert_eq!(f.data.as_ref(), &vec![(i % 251) as u8; 333][..], "content of {name}");
        }
    }

    #[test]
    fn node_failure_is_contained_and_recoverable() {
        let (store, metas, chunks) = dataset(60, 200, 2048);
        let c = cache(store, chunks.clone(), 3, 1 << 30, CachePolicy::Oneshot);
        c.prefetch_all().unwrap();
        c.kill_node(1);
        assert!(c.is_node_down(1));
        assert!(c.resident_fraction() < 1.0, "killed node dropped its chunks");

        let mut down_errors = 0;
        let mut served = 0;
        for (_, meta) in &metas {
            match c.get_file(meta) {
                Ok(_) => served += 1,
                Err(CacheError::NodeDown { node: 1 }) => down_errors += 1,
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        assert!(down_errors > 0, "node 1's share must fail");
        assert!(served > 0, "other nodes keep serving (containment)");

        // Chunk-wise recovery reloads exactly node 1's partition.
        let report = c.recover_node(1).unwrap();
        assert_eq!(report.chunks_loaded as usize, c.partition().chunks_of(1).len());
        for (_, meta) in &metas {
            assert!(c.get_file(meta).is_ok());
        }
        assert!((c.resident_fraction() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn memory_constrained_node_evicts_lru() {
        let (store, metas, chunks) = dataset(64, 512, 2048);
        // Budget fits only ~2 chunks per node.
        let c = cache(store, chunks.clone(), 2, 6000, CachePolicy::OnDemand);
        for (_, meta) in &metas {
            c.get_file(meta).unwrap();
        }
        assert!(c.metrics().evictions() > 0, "capacity pressure must evict");
        for node in 0..2 {
            assert!(c.node_resident_bytes(node) <= 6000);
        }
        // Reads still correct under thrashing.
        for (_, meta) in metas.iter().take(5) {
            assert_eq!(c.get_file(meta).unwrap().data.len(), 512);
        }
    }

    #[test]
    fn unknown_chunk_rejected() {
        let (store, _, chunks) = dataset(4, 64, 4096);
        let c = cache(store, chunks, 1, 1 << 30, CachePolicy::OnDemand);
        let foreign = FileMeta {
            chunk: ChunkIdGenerator::deterministic(9, 9, 9).next_id(),
            index_in_chunk: 0,
            offset: 0,
            length: 1,
            uploaded_ms: 0,
        };
        assert!(matches!(c.get_file(&foreign), Err(CacheError::UnknownChunk(_))));
    }

    #[test]
    fn corrupt_meta_range_rejected() {
        let (store, metas, chunks) = dataset(4, 64, 4096);
        let c = cache(store, chunks, 1, 1 << 30, CachePolicy::OnDemand);
        let mut meta = metas[0].1;
        meta.length = 1 << 30;
        assert!(matches!(c.get_file(&meta), Err(CacheError::Corrupt(_))));
    }

    #[test]
    fn concurrent_readers_share_one_chunk_load() {
        let (store, metas, chunks) = dataset(32, 256, 1 << 20);
        assert_eq!(chunks.len(), 1, "one big chunk expected");
        let c = Arc::new(cache(store, chunks, 1, 1 << 30, CachePolicy::OnDemand));
        let metas = Arc::new(metas);
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let c = c.clone();
                let metas = metas.clone();
                std::thread::spawn(move || {
                    for (_, meta) in metas.iter() {
                        c.get_file(meta).unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.metrics().chunk_loads(), 1, "chunk must be loaded exactly once");
        assert_eq!(c.metrics().file_reads(), 8 * 32);
    }

    #[test]
    fn background_prefetch_overlaps_with_reads() {
        let (store, metas, chunks) = dataset(80, 300, 2048);
        let c = Arc::new(cache(store, chunks.clone(), 2, 1 << 30, CachePolicy::Oneshot));
        let handle = c.prefetch_background();
        // Reads during warm-up: every one must succeed (miss ⇒ on-demand
        // load that de-duplicates with the prefetcher).
        for (_, meta) in &metas {
            assert_eq!(c.get_file(meta).unwrap().data.len(), 300);
        }
        let report = handle.join().unwrap();
        // The prefetcher and readers together load each chunk exactly once.
        assert_eq!(c.metrics().chunk_loads() as usize, chunks.len());
        assert!(report.chunks_loaded as usize <= chunks.len());
        assert!((c.resident_fraction() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn dropping_prefetch_handle_cancels_and_logs() {
        let (store, _, chunks) = dataset(40, 300, 1024);
        // Inline pool: the spawn runs synchronously, so the sweep is
        // finished by the time we drop — no cancel event.
        let c = Arc::new(
            cache(store.clone(), chunks.clone(), 2, 1 << 30, CachePolicy::Oneshot)
                .with_pool(diesel_exec::WorkPool::inline("t")),
        );
        let h = c.prefetch_background();
        assert!(h.is_finished());
        drop(h);
        assert!(c.stats().events.iter().all(|e| e.scope != "cache.prefetch_cancelled"));

        // Cancelling early stops the sweep at a chunk boundary; the
        // partial report never exceeds the partition.
        let c2 = Arc::new(cache(store, chunks, 2, 1 << 30, CachePolicy::Oneshot));
        let h = c2.prefetch_background();
        h.cancel();
        let report = h.join().unwrap();
        assert!(report.chunks_loaded <= c2.partition().chunk_count() as u64);

        // And a drop of an unfinished sweep logs the cancel event.
        let h = c2.prefetch_background();
        let was_finished = h.is_finished();
        drop(h);
        let logged = c2.stats().events.iter().any(|e| e.scope == "cache.prefetch_cancelled");
        assert!(
            was_finished || logged,
            "an unfinished sweep dropped without join must log cancellation"
        );
    }

    #[test]
    fn snapshot_batches_loads_with_bytes_and_logs_recovery() {
        let (store, metas, chunks) = dataset(30, 200, 2048);
        let c = cache(store, chunks, 2, 1 << 30, CachePolicy::OnDemand);
        for (_, meta) in &metas {
            c.get_file(meta).unwrap();
        }
        let snap = c.stats();
        assert!(snap.counter("cache.chunk_hits") <= snap.counter("cache.file_reads"));
        assert!(snap.counter("cache.chunk_loads") > 0);
        assert!(snap.counter("cache.bytes_loaded") > 0);
        c.kill_node(0);
        c.recover_node(0).unwrap();
        let snap = c.stats();
        assert_eq!(snap.counter("cache.recoveries"), 1);
        let scopes: Vec<&str> = snap.events.iter().map(|e| e.scope.as_str()).collect();
        assert_eq!(scopes, vec!["cache.kill_node", "cache.recover_node"]);
    }

    #[test]
    fn prefetch_counts_bytes() {
        let (store, _, chunks) = dataset(20, 100, 1024);
        let total_backing: u64 = store.total_bytes();
        let c = cache(store, chunks, 2, 1 << 30, CachePolicy::Oneshot);
        let report = c.prefetch_all().unwrap();
        assert_eq!(report.bytes_loaded, total_backing);
        // Prefetch again: nothing new to load.
        let again = c.prefetch_all().unwrap();
        assert_eq!(again, LoadReport::default());
    }
}
