//! # diesel-cache — the task-grained distributed cache (paper §4.2)
//!
//! A DLT task reads one dataset many times, so DIESEL caches that dataset
//! in the aggregate memory of *the task's own worker nodes* — not in a
//! global cluster cache. The consequences the paper highlights:
//!
//! * **Failure containment** — a node failure takes down only its own
//!   task's cache, never other tenants' (contrast with the Memcached
//!   cluster collapse of Fig. 6).
//! * **Chunk-granular loading** — warm-up and recovery read ≥ 4 MB chunks
//!   from the backing store, so they run at full storage bandwidth
//!   (Fig. 11b: DIESEL reloads ImageNet-1K in seconds, Memcached takes
//!   minutes at file granularity).
//! * **Master-client topology** — one *master client* per physical node
//!   (the smallest rank on that node) participates in dataset
//!   partitioning; the other I/O workers on the node fetch through it.
//!   Connections drop from `n × (n − 1)` (full mesh over all clients) to
//!   `p × (n − 1)` (p physical nodes), and any file is still one hop
//!   away.
//!
//! Modules:
//!
//! * [`topology`] — ranks, master election, connection counting.
//! * [`ring`] — the consistent-hash placement circle (virtual nodes).
//! * [`partition`] — chunk → owner-node assignment over a ring
//!   membership, plus moved-chunk deltas between memberships.
//! * [`task_cache`] — [`TaskCache`]: the cache itself, with
//!   [`CachePolicy::Oneshot`] prefetch and [`CachePolicy::OnDemand`]
//!   fill, LRU eviction, node-failure injection and chunk-wise recovery.
//! * [`tenant`] — [`TenantCacheMap`]: one `TaskCache` per tenant over a
//!   shared node plane, with weighted per-tenant byte budgets carved
//!   out of the node LRU budget (multi-tenant isolation).

pub mod partition;
pub mod ring;
pub mod task_cache;
pub mod tenant;
pub mod topology;
pub mod transport;

pub use partition::{ChunkMove, ChunkPartition};
pub use ring::{HashRing, DEFAULT_VNODES};
pub use task_cache::{
    CacheConfig, CacheMetrics, CachePolicy, LoadReport, PrefetchHandle, RebalanceReport, TaskCache,
};
pub use tenant::{TenantCacheMap, TenantUsage};
pub use topology::{PeerId, Topology};
pub use transport::{NetOptions, PeerHandle, PeerRequest, PeerServer, RpcCache};

/// Errors from the distributed cache.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CacheError {
    /// The owner node of the requested chunk is down; the caller should
    /// fall back to the DIESEL server path (Fig. 4) — or, if this task's
    /// computation ran on that node, the task has failed anyway
    /// (containment).
    NodeDown {
        /// Index of the failed node.
        node: usize,
    },
    /// The chunk is not in the dataset's partition map.
    UnknownChunk(String),
    /// The backing object store failed.
    Backing(String),
    /// The cached chunk bytes could not be parsed.
    Corrupt(String),
    /// A membership set was structurally invalid (empty ring, duplicate
    /// join, removing the last node, a node index with no clients, …).
    InvalidMembership(String),
    /// The caller routed a request using an owner resolved under an
    /// older membership epoch; re-resolve against the current ring and
    /// retry (§13 stale-owner protocol).
    StaleOwner {
        /// The epoch the cache is currently at.
        epoch: u64,
    },
    /// A peer was asked for a chunk it does not hold in memory
    /// (resident-only fetch during warm handoff; the caller falls back
    /// to the backing store).
    NotResident {
        /// The peer that did not hold the chunk.
        node: usize,
    },
    /// The serving plane's admission controller rejected the request —
    /// the tenant's token bucket is empty or its queue overflowed. The
    /// client should back off for `retry_after_ms` and retry
    /// (`DieselClient` obeys this automatically).
    Throttled {
        /// How long to back off before retrying, in milliseconds.
        retry_after_ms: u64,
    },
}

impl std::fmt::Display for CacheError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CacheError::NodeDown { node } => write!(f, "cache node {node} is down"),
            CacheError::UnknownChunk(id) => write!(f, "chunk not in partition map: {id}"),
            CacheError::Backing(e) => write!(f, "backing store error: {e}"),
            CacheError::Corrupt(e) => write!(f, "corrupt cached chunk: {e}"),
            CacheError::InvalidMembership(e) => write!(f, "invalid cache membership: {e}"),
            CacheError::StaleOwner { epoch } => {
                write!(f, "owner resolved under a stale epoch (cache is at epoch {epoch})")
            }
            CacheError::NotResident { node } => {
                write!(f, "chunk not resident on peer node {node}")
            }
            CacheError::Throttled { retry_after_ms } => {
                write!(f, "tenant throttled; retry after {retry_after_ms} ms")
            }
        }
    }
}

impl std::error::Error for CacheError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, CacheError>;
