//! [`Bytes`]: a cheaply-cloneable, sliceable, immutable byte buffer.
//!
//! Stand-in for the `bytes` crate's `Bytes` with the semantics DIESEL
//! relies on: cloning and slicing share one allocation, so handing a
//! cached chunk to N readers or carving file payloads out of a sealed
//! chunk copies pointers, not data.

use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// The backing storage of a [`Bytes`]: either a shared heap allocation
/// or a borrowed `'static` slice (which needs no allocation at all).
#[derive(Clone)]
enum Data {
    Shared(Arc<Vec<u8>>),
    Static(&'static [u8]),
}

impl Data {
    fn as_slice(&self) -> &[u8] {
        match self {
            Data::Shared(v) => v,
            Data::Static(s) => s,
        }
    }
}

/// An immutable, reference-counted byte buffer; `clone` and
/// [`slice`](Bytes::slice) are O(1) and share the allocation.
#[derive(Clone)]
pub struct Bytes {
    data: Data,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer (backed by a `'static` slice: no allocation).
    pub fn new() -> Self {
        Bytes::from_static(&[])
    }

    /// A buffer over static data. No copy: the slice is held directly,
    /// and clones/slices of the result stay allocation-free.
    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes { data: Data::Static(data), start: 0, end: data.len() }
    }

    /// Whether `self` and `other` are views into the same backing
    /// storage (one shared allocation, or the same static slice). This
    /// is the zero-copy plane's observable invariant: a file read out
    /// of a cached chunk must share the chunk's allocation.
    pub fn shares_allocation(&self, other: &Bytes) -> bool {
        match (&self.data, &other.data) {
            (Data::Shared(a), Data::Shared(b)) => Arc::ptr_eq(a, b),
            (Data::Static(a), Data::Static(b)) => a.as_ptr() == b.as_ptr() && a.len() == b.len(),
            _ => false,
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// A sub-buffer sharing this buffer's allocation. Panics if the
    /// range is out of bounds (same contract as the `bytes` crate).
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice {lo}..{hi} out of range for {}", self.len());
        Bytes { data: self.data.clone(), start: self.start + lo, end: self.start + hi }
    }

    /// The bytes as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data.as_slice()[self.start..self.end]
    }

    /// Take the bytes as an owned `Vec<u8>`. When this handle is the
    /// sole owner of a full-range heap buffer the allocation is moved
    /// out without copying; otherwise (shared, sliced, or static) the
    /// covered range is copied.
    pub fn into_vec(self) -> Vec<u8> {
        let Bytes { data, start, end } = self;
        match data {
            Data::Shared(arc) if start == 0 && end == arc.len() => match Arc::try_unwrap(arc) {
                Ok(v) => v,
                Err(shared) => shared[start..end].to_vec(),
            },
            other => other.as_slice()[start..end].to_vec(),
        }
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes { data: Data::Shared(Arc::new(v)), start: 0, end }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::from_static(s)
    }
}

impl<const N: usize> From<&'static [u8; N]> for Bytes {
    fn from(s: &'static [u8; N]) -> Self {
        Bytes::from_static(s)
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}
impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}
impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl PartialEq<Bytes> for Vec<u8> {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl PartialEq<Bytes> for [u8] {
    fn eq(&self, other: &Bytes) -> bool {
        self == other.as_slice()
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({} bytes)", self.len())
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_equality() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        assert_eq!(b.len(), 3);
        assert_eq!(b, [1u8, 2, 3][..]);
        assert_eq!(b.as_ref(), &[1, 2, 3]);
        assert_eq!(Bytes::new().len(), 0);
        assert!(Bytes::default().is_empty());
        assert_eq!(Bytes::from_static(b"abc"), Bytes::from(b"abc".to_vec()));
        assert_eq!(Bytes::from(String::from("xy")).as_slice(), b"xy");
        assert_eq!((1u8..4).collect::<Bytes>(), Bytes::from(vec![1, 2, 3]));
    }

    #[test]
    fn slicing_shares_the_allocation() {
        let b = Bytes::from((0u8..100).collect::<Vec<_>>());
        let mid = b.slice(10..20);
        assert_eq!(mid.as_slice(), (10u8..20).collect::<Vec<_>>().as_slice());
        // Sub-slicing a slice composes offsets.
        let inner = mid.slice(2..=4);
        assert_eq!(inner.as_slice(), &[12, 13, 14]);
        assert_eq!(b.slice(..).len(), 100);
        assert_eq!(b.slice(95..).as_slice(), &[95, 96, 97, 98, 99]);
        // Same backing allocation for all of them.
        assert!(b.shares_allocation(&inner));
        let c = b.clone();
        assert!(b.shares_allocation(&c));
    }

    #[test]
    fn from_static_holds_the_slice_without_copying() {
        static DATA: &[u8] = b"static payload";
        let b = Bytes::from_static(DATA);
        assert_eq!(b.as_slice().as_ptr(), DATA.as_ptr(), "from_static must not copy");
        let mid = b.slice(7..);
        assert_eq!(mid.as_slice(), b"payload");
        assert_eq!(mid.as_slice().as_ptr(), DATA[7..].as_ptr(), "slices stay in place");
        assert!(b.shares_allocation(&b.clone()));
        // Static and heap buffers never report a shared allocation,
        // even when their contents agree.
        assert!(!b.shares_allocation(&Bytes::from(DATA.to_vec())));
        // into_vec on a static buffer is the documented copy.
        assert_eq!(mid.into_vec(), b"payload".to_vec());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_slice_panics() {
        let _ = Bytes::from(vec![1, 2, 3]).slice(1..5);
    }

    #[test]
    fn into_vec_moves_when_unique_and_copies_when_shared() {
        // Sole owner, full range: the allocation moves (same pointer).
        let v: Vec<u8> = (0u8..16).collect();
        let ptr = v.as_ptr();
        let b = Bytes::from(v);
        let back = b.into_vec();
        assert_eq!(back.as_ptr(), ptr, "unique full-range into_vec must not copy");
        assert_eq!(back, (0u8..16).collect::<Vec<_>>());

        // Shared: the original clone stays usable and the copy is right.
        let b = Bytes::from((0u8..8).collect::<Vec<_>>());
        let keep = b.clone();
        assert_eq!(b.into_vec(), (0u8..8).collect::<Vec<_>>());
        assert_eq!(keep.len(), 8);

        // Sliced: only the covered range comes back.
        let b = Bytes::from((0u8..10).collect::<Vec<_>>()).slice(2..5);
        assert_eq!(b.into_vec(), vec![2, 3, 4]);
    }

    #[test]
    fn hash_and_debug() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(Bytes::from(vec![1, 2]));
        assert!(set.contains(&Bytes::from(vec![1, 2])));
        assert_eq!(format!("{:?}", Bytes::from(vec![0; 5])), "Bytes(5 bytes)");
    }
}
