//! Lockdep-style lock-order witness.
//!
//! Deadlock-freedom in DIESEL is an *enforced invariant*, not a
//! convention: a single ABBA inversion between, say, a KV shard lock and
//! a cache partition lock would wedge every tenant sharing the process
//! (DESIGN.md §12). The witness makes such inversions observable the
//! first time the *order* occurs, long before the interleaving that
//! would actually deadlock:
//!
//! * every [`crate::Mutex`]/[`crate::RwLock`] built with `named(...)`
//!   belongs to a **lock class** (e.g. `"kv.shard"` — all shards of all
//!   instances share one class);
//! * each thread keeps a stack of the classes it currently holds;
//! * acquiring class `B` while holding class `A` inserts the edge
//!   `A → B` into a process-global lock-order graph;
//! * if the new edge closes a cycle (`B` already reaches `A`), that is a
//!   *potential deadlock*: some thread took `A` then `B`, another may
//!   take `B` then `A`. The cycle is reported with the acquisition sites
//!   of both orders — no thread ever needs to block.
//!
//! The check runs *before* the real lock is taken, so `fail` mode
//! panics deterministically on the inverted acquisition instead of
//! timing out a wedged test.
//!
//! Behaviour on a detected cycle is controlled by `DIESEL_LOCKDEP`:
//!
//! | value  | effect                                                    |
//! |--------|-----------------------------------------------------------|
//! | `off`  | tracking disabled entirely (no held stack, no graph)      |
//! | `warn` | record the report, invoke the reporter hook, print once   |
//! | `fail` | all of the above, then panic on the acquiring thread      |
//!
//! The default is `warn`; CI runs the suite once under `fail`
//! (scripts/ci.sh) so an inversion anywhere in the tree is a red build.
//! Reports also flow to `diesel-obs` as `lockdep.cycle{a=…,b=…}` events
//! via the pluggable [`set_cycle_reporter`] hook (util cannot depend on
//! obs, so obs installs the bridge; see `diesel_obs::lockdep`).

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::panic::Location;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Mutex as StdMutex, OnceLock};

use crate::sync::lock_or_recover;

/// An interned lock class: all locks guarding the same kind of state
/// (e.g. every KV shard) share one class and thus one node in the
/// order graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LockClass(u32);

/// What to do when an acquisition closes a cycle in the order graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// No tracking at all (zero overhead beyond one atomic load).
    Off,
    /// Record and report the cycle; keep running.
    Warn,
    /// Record, report, then panic on the acquiring thread.
    Fail,
}

/// One detected lock-order cycle. `a` is the class already held, `b`
/// the class being acquired; the prior fields are the first-observed
/// acquisition that established the opposite order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CycleReport {
    /// Class held at detection time.
    pub a: String,
    /// Class whose acquisition closed the cycle.
    pub b: String,
    /// Class names along the path `b → … → a` already in the graph.
    pub path: Vec<String>,
    /// Where `a` was acquired by the current thread (file:line).
    pub held_site: String,
    /// Where the current thread is acquiring `b` (file:line).
    pub acquire_site: String,
    /// Where the first edge of the opposite order held its lock.
    pub prior_held_site: String,
    /// Where the first edge of the opposite order acquired its lock.
    pub prior_acquire_site: String,
}

impl std::fmt::Display for CycleReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "potential deadlock: acquiring `{}` at {} while holding `{}` (taken at {}), \
             but the opposite order `{}` → {} was established holding `{}` at {} \
             (cycle: {})",
            self.b,
            self.acquire_site,
            self.a,
            self.held_site,
            self.b,
            self.prior_acquire_site,
            self.b,
            self.prior_held_site,
            self.path.join(" → "),
        )
    }
}

/// First-observed acquisition sites of one order-graph edge `from → to`.
#[derive(Debug, Clone)]
struct EdgeSites {
    /// Where `from` had been acquired.
    held: &'static Location<'static>,
    /// Where `to` was acquired under it.
    acquired: &'static Location<'static>,
}

/// The process-global lock-order graph. Internally synchronized with a
/// *raw* std mutex — lockdep's own locks must never be tracked.
#[derive(Default)]
struct Graph {
    ids: HashMap<String, u32>,
    names: Vec<String>,
    edges: HashMap<(u32, u32), EdgeSites>,
    adj: HashMap<u32, Vec<u32>>,
}

impl Graph {
    fn intern(&mut self, name: &str) -> u32 {
        if let Some(&id) = self.ids.get(name) {
            return id;
        }
        let id = self.names.len() as u32;
        self.names.push(name.to_owned());
        self.ids.insert(name.to_owned(), id);
        id
    }

    fn name(&self, id: u32) -> String {
        self.names.get(id as usize).cloned().unwrap_or_else(|| format!("class#{id}"))
    }

    /// Insert `from → to` if absent; returns true when newly inserted.
    fn add_edge(
        &mut self,
        from: u32,
        to: u32,
        held: &'static Location<'static>,
        acquired: &'static Location<'static>,
    ) -> bool {
        if self.edges.contains_key(&(from, to)) {
            return false;
        }
        self.edges.insert((from, to), EdgeSites { held, acquired });
        self.adj.entry(from).or_default().push(to);
        true
    }

    /// A path `from → … → to` over existing edges, if one exists (DFS).
    fn path(&self, from: u32, to: u32) -> Option<Vec<u32>> {
        let mut parent: HashMap<u32, u32> = HashMap::new();
        let mut stack = vec![from];
        parent.insert(from, from);
        while let Some(n) = stack.pop() {
            if n == to {
                let mut path = vec![to];
                let mut cur = to;
                while cur != from {
                    cur = parent.get(&cur).copied()?;
                    path.push(cur);
                }
                path.reverse();
                return Some(path);
            }
            for &next in self.adj.get(&n).map(Vec::as_slice).unwrap_or(&[]) {
                parent.entry(next).or_insert_with(|| {
                    stack.push(next);
                    n
                });
            }
        }
        None
    }
}

fn graph() -> &'static StdMutex<Graph> {
    static GRAPH: OnceLock<StdMutex<Graph>> = OnceLock::new();
    GRAPH.get_or_init(|| StdMutex::new(Graph::default()))
}

fn cycle_log() -> &'static StdMutex<Vec<CycleReport>> {
    static LOG: OnceLock<StdMutex<Vec<CycleReport>>> = OnceLock::new();
    LOG.get_or_init(|| StdMutex::new(Vec::new()))
}

type Reporter = Box<dyn Fn(&CycleReport) + Send + Sync>;

fn reporter() -> &'static StdMutex<Option<Reporter>> {
    static REPORTER: OnceLock<StdMutex<Option<Reporter>>> = OnceLock::new();
    REPORTER.get_or_init(|| StdMutex::new(None))
}

/// Install the process-wide cycle reporter (e.g. the diesel-obs bridge
/// turning reports into `lockdep.cycle{a=…,b=…}` events). Installing a
/// new reporter replaces the previous one.
pub fn set_cycle_reporter(f: Reporter) {
    *lock_or_recover(reporter()) = Some(f);
}

// ---- mode selection ----

const MODE_UNSET: u8 = 0;
const MODE_OFF: u8 = 1;
const MODE_WARN: u8 = 2;
const MODE_FAIL: u8 = 3;

/// Process-wide override set by [`set_global_mode`]; `MODE_UNSET` defers
/// to the `DIESEL_LOCKDEP` environment variable.
static GLOBAL_OVERRIDE: AtomicU8 = AtomicU8::new(MODE_UNSET);

thread_local! {
    static THREAD_MODE: Cell<Option<Mode>> = const { Cell::new(None) };
}

fn env_mode() -> Mode {
    static ENV: OnceLock<Mode> = OnceLock::new();
    *ENV.get_or_init(|| match std::env::var("DIESEL_LOCKDEP").as_deref() {
        Ok("off") | Ok("0") | Ok("false") => Mode::Off,
        Ok("fail") | Ok("panic") => Mode::Fail,
        _ => Mode::Warn,
    })
}

/// The effective mode on this thread: thread override, then process
/// override, then `DIESEL_LOCKDEP` (default `warn`).
pub fn mode() -> Mode {
    if let Some(m) = THREAD_MODE.with(Cell::get) {
        return m;
    }
    match GLOBAL_OVERRIDE.load(Ordering::Relaxed) {
        MODE_OFF => Mode::Off,
        MODE_WARN => Mode::Warn,
        MODE_FAIL => Mode::Fail,
        _ => env_mode(),
    }
}

/// Override the process-wide mode (tests; `None` restores the env
/// setting).
pub fn set_global_mode(mode: Option<Mode>) {
    let v = match mode {
        None => MODE_UNSET,
        Some(Mode::Off) => MODE_OFF,
        Some(Mode::Warn) => MODE_WARN,
        Some(Mode::Fail) => MODE_FAIL,
    };
    GLOBAL_OVERRIDE.store(v, Ordering::Relaxed);
}

/// Override the mode for the current thread only (tests exercising
/// `warn` and `fail` side by side; `None` restores the process mode).
/// Spawned threads do *not* inherit the override.
pub fn set_thread_mode(mode: Option<Mode>) {
    THREAD_MODE.with(|m| m.set(mode));
}

// ---- per-thread held stack ----

struct HeldEntry {
    class: u32,
    site: &'static Location<'static>,
    seq: u64,
}

thread_local! {
    static HELD: RefCell<Vec<HeldEntry>> = const { RefCell::new(Vec::new()) };
    static NEXT_SEQ: Cell<u64> = const { Cell::new(0) };
    static REPORTING: Cell<bool> = const { Cell::new(false) };
}

/// Registration of one held named lock; dropping it pops the entry from
/// the thread's held stack (guards may drop out of stack order, so the
/// pop is by sequence number, not position).
#[derive(Debug)]
pub struct Held {
    class: LockClass,
    seq: u64,
}

impl Held {
    /// The class this registration belongs to.
    pub fn class(&self) -> LockClass {
        self.class
    }
}

impl Drop for Held {
    fn drop(&mut self) {
        HELD.with(|h| {
            let mut held = h.borrow_mut();
            if let Some(pos) = held.iter().rposition(|e| e.seq == self.seq) {
                held.remove(pos);
            }
        });
    }
}

/// Intern `name` as a lock class.
pub fn class(name: &str) -> LockClass {
    LockClass(lock_or_recover(graph()).intern(name))
}

/// Record the acquisition of `class` by the current thread: insert
/// held→acquired edges, detect cycles, then push the class onto the
/// held stack. Returns `None` when tracking is off. Call *before*
/// blocking on the real lock, so `fail` mode reports instead of
/// deadlocking.
#[track_caller]
pub fn acquire(class: LockClass) -> Option<Held> {
    let mode = mode();
    if mode == Mode::Off {
        return None;
    }
    let site = Location::caller();
    let held: Vec<(u32, &'static Location<'static>)> =
        HELD.with(|h| h.borrow().iter().map(|e| (e.class, e.site)).collect());

    let mut reports = Vec::new();
    if !held.is_empty() {
        let mut g = lock_or_recover(graph());
        for &(hc, hsite) in &held {
            if hc == class.0 {
                // Same-class nesting: two locks of one class taken by
                // one thread. With another thread doing the same in the
                // opposite instance order this deadlocks, and lockdep
                // has no instance-level order to trust — report it.
                reports.push(CycleReport {
                    a: g.name(hc),
                    b: g.name(class.0),
                    path: vec![g.name(hc), g.name(class.0)],
                    held_site: hsite.to_string(),
                    acquire_site: site.to_string(),
                    prior_held_site: hsite.to_string(),
                    prior_acquire_site: site.to_string(),
                });
                continue;
            }
            if g.add_edge(hc, class.0, hsite, site) {
                if let Some(path) = g.path(class.0, hc) {
                    // The first edge on the return path carries the
                    // sites that established the opposite order.
                    let prior = path
                        .first()
                        .zip(path.get(1))
                        .and_then(|(&x, &y)| g.edges.get(&(x, y)).cloned());
                    let (p_held, p_acq) = match prior {
                        Some(e) => (e.held.to_string(), e.acquired.to_string()),
                        None => (String::new(), String::new()),
                    };
                    reports.push(CycleReport {
                        a: g.name(hc),
                        b: g.name(class.0),
                        path: path.iter().map(|&id| g.name(id)).collect(),
                        held_site: hsite.to_string(),
                        acquire_site: site.to_string(),
                        prior_held_site: p_held,
                        prior_acquire_site: p_acq,
                    });
                }
            }
        }
    }

    for r in &reports {
        deliver(r);
    }
    if mode == Mode::Fail {
        if let Some(r) = reports.first() {
            // diesel-lint: allow(R1) fail mode exists to make lock-order inversions fatal in CI
            panic!("lockdep: {r}");
        }
    }

    let seq = NEXT_SEQ.with(|s| {
        let v = s.get();
        s.set(v + 1);
        v
    });
    HELD.with(|h| h.borrow_mut().push(HeldEntry { class: class.0, site, seq }));
    Some(Held { class, seq })
}

/// Append to the log and invoke the reporter hook. The hook may itself
/// acquire named locks (the obs bridge records an event); a thread-local
/// re-entrancy latch stops a cycle detected *inside* the hook from
/// recursing back into it.
fn deliver(r: &CycleReport) {
    lock_or_recover(cycle_log()).push(r.clone());
    let entered = REPORTING.with(|f| {
        let was = f.get();
        f.set(true);
        was
    });
    if !entered {
        if let Some(hook) = lock_or_recover(reporter()).as_ref() {
            hook(r);
        }
        REPORTING.with(|f| f.set(false));
        eprintln!("lockdep: {r}");
    }
}

/// Snapshot of every cycle reported so far in this process (tests
/// assert on deltas — the log only grows).
pub fn cycles() -> Vec<CycleReport> {
    lock_or_recover(cycle_log()).clone()
}

/// Number of cycles reported between the two named classes, in either
/// direction.
pub fn cycles_between(a: &str, b: &str) -> usize {
    lock_or_recover(cycle_log())
        .iter()
        .filter(|r| (r.a == a && r.b == b) || (r.a == b && r.b == a))
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;

    // Class names are process-global; every test uses its own so tests
    // can run in any order and in parallel. Tests that *deliberately*
    // invert force warn mode on their thread, so the whole suite also
    // passes under DIESEL_LOCKDEP=fail.

    fn warn_here() {
        set_thread_mode(Some(Mode::Warn));
    }

    #[test]
    fn consistent_order_never_reports() {
        let before = cycles().len();
        let a = class("t1.a");
        let b = class("t1.b");
        for _ in 0..3 {
            let ga = acquire(a);
            let gb = acquire(b);
            drop(gb);
            drop(ga);
        }
        assert_eq!(cycles().len(), before);
    }

    #[test]
    fn abba_reports_without_blocking() {
        warn_here();
        let a = class("t2.a");
        let b = class("t2.b");
        {
            let ga = acquire(a);
            let gb = acquire(b);
            drop((ga, gb));
        }
        let before = cycles_between("t2.a", "t2.b");
        {
            let gb = acquire(b);
            let ga = acquire(a); // closes the cycle; warn mode keeps going
            drop((ga, gb));
        }
        set_thread_mode(None);
        assert_eq!(cycles_between("t2.a", "t2.b"), before + 1);
        let r = cycles().into_iter().rev().find(|r| r.a == "t2.b" && r.b == "t2.a");
        let r = r.expect("report recorded");
        assert!(r.path.contains(&"t2.a".to_owned()) && r.path.contains(&"t2.b".to_owned()));
        assert!(r.held_site.contains("lockdep.rs"), "{}", r.held_site);
        assert!(r.prior_acquire_site.contains("lockdep.rs"), "{}", r.prior_acquire_site);
    }

    #[test]
    fn same_class_nesting_reports() {
        warn_here();
        let a = class("t3.a");
        let before = cycles_between("t3.a", "t3.a");
        let g1 = acquire(a);
        let g2 = acquire(a);
        drop((g1, g2));
        set_thread_mode(None);
        assert_eq!(cycles_between("t3.a", "t3.a"), before + 1);
    }

    #[test]
    fn transitive_cycle_is_detected() {
        warn_here();
        let a = class("t4.a");
        let b = class("t4.b");
        let c = class("t4.c");
        {
            let ga = acquire(a);
            let gb = acquire(b);
            drop((ga, gb));
        }
        {
            let gb = acquire(b);
            let gc = acquire(c);
            drop((gb, gc));
        }
        let before = cycles_between("t4.c", "t4.a");
        {
            let gc = acquire(c);
            let ga = acquire(a); // a → b → c → a
            drop((gc, ga));
        }
        set_thread_mode(None);
        assert_eq!(cycles_between("t4.c", "t4.a"), before + 1);
    }

    #[test]
    fn out_of_order_drop_pops_the_right_entry() {
        let a = class("t5.a");
        let b = class("t5.b");
        let ga = acquire(a);
        let gb = acquire(b);
        drop(ga); // drop the *outer* first
                  // b is still held; taking a fresh class must edge from b only.
        let c = class("t5.c");
        let gc = acquire(c);
        drop((gb, gc));
        let held: usize = HELD.with(|h| h.borrow().len());
        assert_eq!(held, 0);
    }

    #[test]
    fn thread_mode_fail_panics_on_inversion() {
        let a = class("t6.a");
        let b = class("t6.b");
        {
            let ga = acquire(a);
            let gb = acquire(b);
            drop((ga, gb));
        }
        let out = std::thread::spawn(move || {
            set_thread_mode(Some(Mode::Fail));
            let gb = acquire(b);
            let ga = acquire(a); // panics here, before any blocking
            drop((gb, ga));
        })
        .join();
        assert!(out.is_err(), "fail mode must panic on the inverted acquisition");
        // The held stack of the panicking thread died with it; ours is
        // untouched and the report is logged.
        assert!(cycles_between("t6.a", "t6.b") >= 1);
    }

    #[test]
    fn off_mode_tracks_nothing() {
        set_thread_mode(Some(Mode::Off));
        let a = class("t7.a");
        let b = class("t7.b");
        let before = cycles().len();
        let ga = acquire(a);
        assert!(ga.is_none());
        let gb = acquire(b);
        let ga2 = acquire(a);
        drop((ga, gb, ga2));
        set_thread_mode(None);
        assert_eq!(cycles().len(), before);
    }
}
