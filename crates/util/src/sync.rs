//! Poison-recovering synchronization primitives.
//!
//! A panic while holding a std lock poisons it, and every later
//! `.lock().unwrap()` turns one bug into a cascade of panics across
//! unrelated threads — exactly what a storage server must not do. These
//! wrappers take the other position: the data may be mid-update, but
//! DIESEL's lock-protected state is always structurally valid (maps,
//! queues, counters), so recovering the guard and continuing is strictly
//! better than crashing the process.
//!
//! Lint rule R1 (see DESIGN.md "Static invariants") bans `unwrap` —
//! including the lock-unwrap idiom — in library crates; these types and
//! the [`lock_or_recover`] helpers are the blessed replacement.

use std::sync::PoisonError;
use std::time::Duration;

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;
/// Guard type returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard type returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// Acquire a raw `std::sync::Mutex`, recovering the guard if a previous
/// holder panicked.
pub fn lock_or_recover<T: ?Sized>(m: &std::sync::Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Acquire a raw `std::sync::RwLock` for reading, recovering on poison.
pub fn read_or_recover<T: ?Sized>(l: &std::sync::RwLock<T>) -> RwLockReadGuard<'_, T> {
    l.read().unwrap_or_else(PoisonError::into_inner)
}

/// Acquire a raw `std::sync::RwLock` for writing, recovering on poison.
pub fn write_or_recover<T: ?Sized>(l: &std::sync::RwLock<T>) -> RwLockWriteGuard<'_, T> {
    l.write().unwrap_or_else(PoisonError::into_inner)
}

/// A mutex whose `lock` never panics: poisoning is recovered via
/// [`lock_or_recover`].
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// A new unlocked mutex.
    pub const fn new(value: T) -> Self {
        Mutex { inner: std::sync::Mutex::new(value) }
    }

    /// Consume the mutex, returning the data (recovering on poison).
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Block until the lock is held.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        lock_or_recover(&self.inner)
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("Mutex").field(&&*self.lock()).finish()
    }
}

/// A reader-writer lock whose acquisitions never panic.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// A new unlocked rwlock.
    pub const fn new(value: T) -> Self {
        RwLock { inner: std::sync::RwLock::new(value) }
    }

    /// Consume the lock, returning the data (recovering on poison).
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        read_or_recover(&self.inner)
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        write_or_recover(&self.inner)
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("RwLock").field(&&*self.read()).finish()
    }
}

/// A condition variable paired with [`Mutex`], recovering on poison.
///
/// The wait APIs take and return the guard by value (std semantics);
/// `wait_timeout` reports whether the wait timed out.
#[derive(Debug, Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// A new condition variable.
    pub const fn new() -> Self {
        Condvar { inner: std::sync::Condvar::new() }
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }

    /// Block until notified. Spurious wakeups are possible; callers loop
    /// on their predicate.
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        self.inner.wait(guard).unwrap_or_else(PoisonError::into_inner)
    }

    /// Block until notified or `dur` elapses. Returns the reacquired
    /// guard and whether the wait timed out.
    pub fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        dur: Duration,
    ) -> (MutexGuard<'a, T>, bool) {
        let (guard, res) =
            self.inner.wait_timeout(guard, dur).unwrap_or_else(PoisonError::into_inner);
        (guard, res.timed_out())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic_and_debug() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
        assert_eq!(format!("{m:?}"), "Mutex(42)");
        let mut m = m;
        *m.get_mut() += 1;
        assert_eq!(m.into_inner(), 43);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
        assert_eq!(format!("{l:?}"), "RwLock([1, 2, 3])");
        assert_eq!(l.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn poisoned_mutex_recovers_instead_of_panicking() {
        let m = Arc::new(Mutex::new(7));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        // A plain std mutex would now fail; the wrapper recovers.
        assert_eq!(*m.lock(), 7);
        *m.lock() = 8;
        assert_eq!(*m.lock(), 8);
    }

    #[test]
    fn poisoned_rwlock_recovers() {
        let l = Arc::new(RwLock::new(String::from("ok")));
        let l2 = l.clone();
        let _ = std::thread::spawn(move || {
            let _g = l2.write();
            panic!("poison it");
        })
        .join();
        assert_eq!(&*l.read(), "ok");
    }

    #[test]
    fn raw_lock_helpers_recover() {
        let m = Arc::new(std::sync::Mutex::new(1));
        let l = Arc::new(std::sync::RwLock::new(2));
        let (m2, l2) = (m.clone(), l.clone());
        let _ = std::thread::spawn(move || {
            let _a = lock_or_recover(&m2);
            let _b = write_or_recover(&l2);
            panic!("poison both");
        })
        .join();
        assert_eq!(*lock_or_recover(&m), 1);
        assert_eq!(*read_or_recover(&l), 2);
        *write_or_recover(&l) = 3;
        assert_eq!(*read_or_recover(&l), 3);
    }

    #[test]
    fn condvar_wakes_and_times_out() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut done = m.lock();
            while !*done {
                done = cv.wait(done);
            }
        });
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_all();
        }
        t.join().unwrap();

        let (m, cv) = &*pair;
        let g = m.lock();
        let (_g, timed_out) = cv.wait_timeout(g, Duration::from_millis(5));
        assert!(timed_out);
    }
}
