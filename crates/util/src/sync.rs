//! Poison-recovering, lock-order-witnessed synchronization primitives.
//!
//! A panic while holding a std lock poisons it, and every later
//! `.lock().unwrap()` turns one bug into a cascade of panics across
//! unrelated threads — exactly what a storage server must not do. These
//! wrappers take the other position: the data may be mid-update, but
//! DIESEL's lock-protected state is always structurally valid (maps,
//! queues, counters), so recovering the guard and continuing is strictly
//! better than crashing the process.
//!
//! On top of poison recovery, locks built with [`Mutex::named`] /
//! [`RwLock::named`] participate in the [`crate::lockdep`] lock-order
//! witness: each acquisition records held→acquired edges in a global
//! order graph and reports a *potential* deadlock the first time two
//! classes are ever taken in both orders (DESIGN.md §12). Anonymous
//! locks from [`Mutex::new`] stay untracked — serving-crate locks must
//! be named; lint rule R5 and the `DIESEL_LOCKDEP=fail` CI pass keep it
//! that way.
//!
//! Lint rule R1 (see DESIGN.md "Static invariants") bans `unwrap` —
//! including the lock-unwrap idiom — in library crates; these types and
//! the [`lock_or_recover`] helpers are the blessed replacement.

use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;
use std::time::Duration;

use crate::lockdep;

/// Acquire a raw `std::sync::Mutex`, recovering the guard if a previous
/// holder panicked. Raw std locks are invisible to the lock-order
/// witness; use [`Mutex::named`] for serving-path state.
pub fn lock_or_recover<T: ?Sized>(m: &std::sync::Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Acquire a raw `std::sync::RwLock` for reading, recovering on poison.
pub fn read_or_recover<T: ?Sized>(l: &std::sync::RwLock<T>) -> std::sync::RwLockReadGuard<'_, T> {
    l.read().unwrap_or_else(PoisonError::into_inner)
}

/// Acquire a raw `std::sync::RwLock` for writing, recovering on poison.
pub fn write_or_recover<T: ?Sized>(l: &std::sync::RwLock<T>) -> std::sync::RwLockWriteGuard<'_, T> {
    l.write().unwrap_or_else(PoisonError::into_inner)
}

/// Guard returned by [`Mutex::lock`]. Dropping it releases the lock and
/// pops the class from the thread's lockdep held stack. The struct has
/// no `Drop` impl of its own, so [`Condvar`] can destructure it.
pub struct MutexGuard<'a, T: ?Sized> {
    // Declaration order is drop order: unregister from the witness
    // first, then release the lock. Both are per-thread effects, so the
    // window between them is unobservable by other threads.
    held: Option<lockdep::Held>,
    inner: std::sync::MutexGuard<'a, T>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        (**self).fmt(f)
    }
}

/// Guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    // Kept only for its `Drop` (pops the lockdep held stack).
    _held: Option<lockdep::Held>,
    inner: std::sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLockReadGuard<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        (**self).fmt(f)
    }
}

/// Guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    // Kept only for its `Drop` (pops the lockdep held stack).
    _held: Option<lockdep::Held>,
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLockWriteGuard<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        (**self).fmt(f)
    }
}

/// A mutex whose `lock` never panics (poisoning is recovered) and
/// whose acquisitions — when built with [`Mutex::named`] — feed the
/// lock-order witness.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    class: Option<lockdep::LockClass>,
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// A new unlocked, *anonymous* mutex (invisible to the lock-order
    /// witness). Serving-crate state should use [`Mutex::named`].
    pub const fn new(value: T) -> Self {
        Mutex { class: None, inner: std::sync::Mutex::new(value) }
    }

    /// A new unlocked mutex in lock class `name` (e.g. `"kv.shard"`).
    /// All locks sharing a name share one node in the order graph.
    pub fn named(name: &str, value: T) -> Self {
        Mutex { class: Some(lockdep::class(name)), inner: std::sync::Mutex::new(value) }
    }

    /// Consume the mutex, returning the data (recovering on poison).
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Block until the lock is held. The lockdep check runs *before*
    /// blocking, so an ordering inversion reports (or panics under
    /// `DIESEL_LOCKDEP=fail`) instead of deadlocking.
    #[track_caller]
    pub fn lock(&self) -> MutexGuard<'_, T> {
        // Direct call (not `and_then(lockdep::acquire)`): going through
        // a fn-pointer coercion would defeat `#[track_caller]` and every
        // acquisition site would point here instead of at the caller.
        let held = match self.class {
            Some(c) => lockdep::acquire(c),
            None => None,
        };
        MutexGuard { held, inner: lock_or_recover(&self.inner) }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("Mutex").field(&&*self.lock()).finish()
    }
}

/// A reader-writer lock whose acquisitions never panic; named instances
/// feed the lock-order witness (reads and writes share the class).
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    class: Option<lockdep::LockClass>,
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// A new unlocked, *anonymous* rwlock (invisible to the witness).
    pub const fn new(value: T) -> Self {
        RwLock { class: None, inner: std::sync::RwLock::new(value) }
    }

    /// A new unlocked rwlock in lock class `name`.
    pub fn named(name: &str, value: T) -> Self {
        RwLock { class: Some(lockdep::class(name)), inner: std::sync::RwLock::new(value) }
    }

    /// Consume the lock, returning the data (recovering on poison).
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    #[track_caller]
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let held = match self.class {
            Some(c) => lockdep::acquire(c),
            None => None,
        };
        RwLockReadGuard { _held: held, inner: read_or_recover(&self.inner) }
    }

    /// Acquire exclusive write access.
    #[track_caller]
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let held = match self.class {
            Some(c) => lockdep::acquire(c),
            None => None,
        };
        RwLockWriteGuard { _held: held, inner: write_or_recover(&self.inner) }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("RwLock").field(&&*self.read()).finish()
    }
}

/// A condition variable paired with [`Mutex`], recovering on poison.
///
/// The wait APIs take and return the guard by value (std semantics);
/// `wait_timeout` reports whether the wait timed out. While a thread is
/// parked the mutex is released, so the waiter's lockdep registration
/// is popped for the duration and re-established on wake — a lock held
/// *around* a wait never falsely orders against locks taken by the
/// thread that wakes it.
#[derive(Debug, Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// A new condition variable.
    pub const fn new() -> Self {
        Condvar { inner: std::sync::Condvar::new() }
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }

    /// Block until notified. Spurious wakeups are possible; callers loop
    /// on their predicate.
    #[track_caller]
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        let MutexGuard { held, inner } = guard;
        let class = held.as_ref().map(lockdep::Held::class);
        drop(held); // parked threads hold nothing
        let inner = self.inner.wait(inner).unwrap_or_else(PoisonError::into_inner);
        let held = match class {
            Some(c) => lockdep::acquire(c),
            None => None,
        };
        MutexGuard { held, inner }
    }

    /// Block until notified or `dur` elapses. Returns the reacquired
    /// guard and whether the wait timed out.
    #[track_caller]
    pub fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        dur: Duration,
    ) -> (MutexGuard<'a, T>, bool) {
        let MutexGuard { held, inner } = guard;
        let class = held.as_ref().map(lockdep::Held::class);
        drop(held);
        let (inner, res) =
            self.inner.wait_timeout(inner, dur).unwrap_or_else(PoisonError::into_inner);
        let held = match class {
            Some(c) => lockdep::acquire(c),
            None => None,
        };
        (MutexGuard { held, inner }, res.timed_out())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic_and_debug() {
        let m = Mutex::named("sync-test.basic", 41);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
        assert_eq!(format!("{m:?}"), "Mutex(42)");
        let mut m = m;
        *m.get_mut() += 1;
        assert_eq!(m.into_inner(), 43);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::named("sync-test.rw", vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
        assert_eq!(format!("{l:?}"), "RwLock([1, 2, 3])");
        assert_eq!(l.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn poisoned_mutex_recovers_instead_of_panicking() {
        let m = Arc::new(Mutex::new(7));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        // A plain std mutex would now fail; the wrapper recovers.
        assert_eq!(*m.lock(), 7);
        *m.lock() = 8;
        assert_eq!(*m.lock(), 8);
    }

    #[test]
    fn poisoned_rwlock_recovers() {
        let l = Arc::new(RwLock::new(String::from("ok")));
        let l2 = l.clone();
        let _ = std::thread::spawn(move || {
            let _g = l2.write();
            panic!("poison it");
        })
        .join();
        assert_eq!(&*l.read(), "ok");
    }

    #[test]
    fn raw_lock_helpers_recover() {
        let m = Arc::new(std::sync::Mutex::new(1));
        let l = Arc::new(std::sync::RwLock::new(2));
        let (m2, l2) = (m.clone(), l.clone());
        let _ = std::thread::spawn(move || {
            let _a = lock_or_recover(&m2);
            let _b = write_or_recover(&l2);
            panic!("poison both");
        })
        .join();
        assert_eq!(*lock_or_recover(&m), 1);
        assert_eq!(*read_or_recover(&l), 2);
        *write_or_recover(&l) = 3;
        assert_eq!(*read_or_recover(&l), 3);
    }

    #[test]
    fn condvar_wakes_and_times_out() {
        let pair = Arc::new((Mutex::named("sync-test.cv", false), Condvar::new()));
        let p2 = pair.clone();
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut done = m.lock();
            while !*done {
                done = cv.wait(done);
            }
        });
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_all();
        }
        t.join().unwrap();

        let (m, cv) = &*pair;
        let g = m.lock();
        let (_g, timed_out) = cv.wait_timeout(g, Duration::from_millis(5));
        assert!(timed_out);
    }

    #[test]
    fn named_locks_feed_the_witness() {
        // Inverted acquisition across two named mutexes is reported
        // without any thread blocking; force warn mode so the suite
        // also passes under DIESEL_LOCKDEP=fail.
        crate::lockdep::set_thread_mode(Some(crate::lockdep::Mode::Warn));
        let a = Mutex::named("sync-test.wa", 1);
        let b = Mutex::named("sync-test.wb", 2);
        {
            let ga = a.lock();
            let gb = b.lock();
            drop((ga, gb));
        }
        let before = crate::lockdep::cycles_between("sync-test.wa", "sync-test.wb");
        {
            let gb = b.lock();
            let ga = a.lock();
            drop((gb, ga));
        }
        crate::lockdep::set_thread_mode(None);
        assert_eq!(crate::lockdep::cycles_between("sync-test.wa", "sync-test.wb"), before + 1);
    }

    #[test]
    fn condvar_wait_releases_witness_registration() {
        // Holding m around a wait and locking x inside another thread's
        // wake path must not create m→x edges *while parked*.
        let pair = Arc::new((Mutex::named("sync-test.cvw", 0u32), Condvar::new()));
        let p2 = pair.clone();
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut g = m.lock();
            while *g == 0 {
                g = cv.wait(g);
            }
            *g
        });
        let (m, cv) = &*pair;
        std::thread::sleep(Duration::from_millis(10));
        *m.lock() = 7;
        cv.notify_all();
        assert_eq!(t.join().unwrap(), 7);
    }
}
