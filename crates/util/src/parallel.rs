//! Scoped-thread data parallelism (stand-in for rayon's `par_chunks_mut`).
//!
//! [`par_chunks_mut`] splits a mutable slice into fixed-size chunks and
//! processes them on `std::thread::scope` workers. Chunk indices are
//! global and the callback sees exactly the chunks `chunks_mut` would
//! produce, so results are identical to the serial loop regardless of
//! worker count — only wall time changes.

use std::num::NonZeroUsize;

fn worker_count() -> usize {
    std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1)
}

/// Apply `f(chunk_index, chunk)` to every `size`-sized chunk of `data`
/// (last chunk may be shorter), fanning out across threads.
///
/// Panics if `size` is zero (same contract as `chunks_mut`).
pub fn par_chunks_mut<T, F>(data: &mut [T], size: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(size > 0, "par_chunks_mut: chunk size must be non-zero");
    let n_chunks = data.len().div_ceil(size);
    let workers = worker_count().min(n_chunks);
    if workers <= 1 {
        for (i, chunk) in data.chunks_mut(size).enumerate() {
            f(i, chunk);
        }
        return;
    }
    // Give each worker a contiguous run of whole chunks.
    let chunks_per_worker = n_chunks.div_ceil(workers);
    let stride = chunks_per_worker * size;
    std::thread::scope(|scope| {
        let f = &f;
        let mut rest = data;
        let mut base = 0usize;
        while !rest.is_empty() {
            let take = stride.min(rest.len());
            let (head, tail) = rest.split_at_mut(take);
            rest = tail;
            let first_index = base;
            scope.spawn(move || {
                for (i, chunk) in head.chunks_mut(size).enumerate() {
                    f(first_index + i, chunk);
                }
            });
            base += chunks_per_worker;
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_the_serial_loop() {
        for len in [0usize, 1, 7, 64, 1000, 1003] {
            for size in [1usize, 3, 64, 2000] {
                let mut par: Vec<u64> = (0..len as u64).collect();
                let mut ser = par.clone();
                par_chunks_mut(&mut par, size, |i, c| {
                    for v in c.iter_mut() {
                        *v = v.wrapping_mul(31).wrapping_add(i as u64);
                    }
                });
                for (i, c) in ser.chunks_mut(size).enumerate() {
                    for v in c.iter_mut() {
                        *v = v.wrapping_mul(31).wrapping_add(i as u64);
                    }
                }
                assert_eq!(par, ser, "len={len} size={size}");
            }
        }
    }

    #[test]
    fn chunk_indices_are_global_and_complete() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let mut data = vec![0u8; 257];
        let seen = AtomicU64::new(0);
        par_chunks_mut(&mut data, 16, |i, chunk| {
            assert!(chunk.len() == 16 || (i == 16 && chunk.len() == 1));
            seen.fetch_or(1 << i, Ordering::SeqCst);
        });
        assert_eq!(seen.load(Ordering::SeqCst), (1 << 17) - 1);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_chunk_size_panics() {
        par_chunks_mut(&mut [1u8, 2], 0, |_, _| {});
    }
}
