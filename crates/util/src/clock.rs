//! Injectable time source for backoff, deadlines, and timestamps.
//!
//! Everything in the tree that waits, times out, or stamps data takes an
//! `Arc<dyn Clock>`: production code uses [`SystemClock`], tests use
//! [`MockClock`], where `sleep_ns` simply advances the reading. Chunk
//! IDs additionally need *wall* time (their embedded timestamps order
//! the KV recovery scan, DIESEL §4.1.2), so the trait also exposes
//! [`epoch_ms`](Clock::epoch_ms).
//!
//! This module is the only place in the workspace allowed to call
//! `Instant::now`/`SystemTime::now` — determinism rule R2 (enforced by
//! `diesel-lint`) flags any other read, which is what guarantees that
//! swapping in a `MockClock` actually controls all of time.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

/// A monotonic nanosecond clock that can also block and tell wall time.
pub trait Clock: Send + Sync {
    /// Nanoseconds since an arbitrary (per-clock) origin. Monotonic.
    fn now_ns(&self) -> u64;

    /// Wait for `ns` nanoseconds (or pretend to).
    fn sleep_ns(&self, ns: u64);

    /// Milliseconds since the Unix epoch (wall clock). Defaults to the
    /// monotonic reading, which gives virtual clocks a coherent epoch
    /// starting at zero.
    fn epoch_ms(&self) -> u64 {
        self.now_ns() / 1_000_000
    }
}

/// Real time: `Instant`-backed readings, `thread::sleep` waits, and
/// `SystemTime`-anchored epoch timestamps.
#[derive(Debug)]
pub struct SystemClock {
    origin: Instant,
    epoch_at_origin_ms: u64,
}

impl SystemClock {
    /// A clock whose monotonic origin is "now".
    pub fn new() -> Self {
        let epoch_at_origin_ms =
            SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.as_millis() as u64).unwrap_or(0);
        SystemClock { origin: Instant::now(), epoch_at_origin_ms }
    }
}

impl Default for SystemClock {
    fn default() -> Self {
        SystemClock::new()
    }
}

impl Clock for SystemClock {
    fn now_ns(&self) -> u64 {
        self.origin.elapsed().as_nanos() as u64
    }
    fn sleep_ns(&self, ns: u64) {
        std::thread::sleep(Duration::from_nanos(ns));
    }
    fn epoch_ms(&self) -> u64 {
        // Derived from the monotonic origin so the reading never goes
        // backwards even if the system wall clock is stepped.
        self.epoch_at_origin_ms + self.origin.elapsed().as_millis() as u64
    }
}

/// Virtual time for tests: starts at zero, advances only on demand.
///
/// `sleep_ns` advances the clock instead of blocking, so retry/backoff
/// schedules can be asserted exactly and instantly. The epoch reading is
/// `base_epoch_ms + now_ns/1e6`; set a base with
/// [`at_epoch_ms`](MockClock::at_epoch_ms) when a test needs realistic
/// wall timestamps (e.g. chunk-ID ordering).
#[derive(Debug, Default)]
pub struct MockClock {
    now: AtomicU64,
    base_epoch_ms: AtomicU64,
}

impl MockClock {
    /// A clock reading zero (monotonic and epoch).
    pub fn new() -> Self {
        MockClock { now: AtomicU64::new(0), base_epoch_ms: AtomicU64::new(0) }
    }

    /// A clock whose epoch reading starts at `ms`.
    pub fn at_epoch_ms(ms: u64) -> Self {
        MockClock { now: AtomicU64::new(0), base_epoch_ms: AtomicU64::new(ms) }
    }

    /// Move the clock forward by `ns`.
    pub fn advance(&self, ns: u64) {
        self.now.fetch_add(ns, Ordering::SeqCst);
    }
}

impl Clock for MockClock {
    fn now_ns(&self) -> u64 {
        self.now.load(Ordering::SeqCst)
    }
    fn sleep_ns(&self, ns: u64) {
        self.advance(ns);
    }
    fn epoch_ms(&self) -> u64 {
        self.base_epoch_ms.load(Ordering::SeqCst) + self.now_ns() / 1_000_000
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mock_clock_advances_on_sleep() {
        let c = MockClock::new();
        assert_eq!(c.now_ns(), 0);
        c.sleep_ns(250);
        c.advance(50);
        assert_eq!(c.now_ns(), 300);
    }

    #[test]
    fn mock_clock_epoch_tracks_base_plus_virtual_time() {
        let c = MockClock::at_epoch_ms(1_600_000_000_000);
        assert_eq!(c.epoch_ms(), 1_600_000_000_000);
        c.advance(2_500_000_000); // 2.5 s
        assert_eq!(c.epoch_ms(), 1_600_000_002_500);
    }

    #[test]
    fn system_clock_is_monotonic() {
        let c = SystemClock::new();
        let a = c.now_ns();
        c.sleep_ns(1_000_000);
        let b = c.now_ns();
        assert!(b >= a + 1_000_000, "a={a} b={b}");
    }

    #[test]
    fn system_clock_epoch_is_plausible_and_monotonic() {
        let c = SystemClock::new();
        let a = c.epoch_ms();
        // After 2020-01-01 in any sane environment.
        assert!(a > 1_577_836_800_000, "epoch_ms={a}");
        c.sleep_ns(2_000_000);
        assert!(c.epoch_ms() >= a);
    }
}
