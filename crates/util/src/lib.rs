//! `diesel-util`: the workspace's bottom layer.
//!
//! Every other crate builds on these three pieces:
//!
//! - [`sync`] — `Mutex`/`RwLock`/`Condvar` wrappers that recover from
//!   poisoning instead of unwrapping, plus the free-function
//!   [`lock_or_recover`] family for code holding raw std locks. This is
//!   what makes panic-freedom rule R1 enforceable: the only blessed way
//!   to acquire a lock never panics.
//! - [`clock`] — the injectable [`Clock`] trait ([`SystemClock`] /
//!   [`MockClock`]). This module is the single place in the tree allowed
//!   to read `Instant::now`/`SystemTime::now` (determinism rule R2);
//!   everything else takes an `Arc<dyn Clock>`.
//! - [`bytes`] — [`Bytes`], a cheaply-cloneable, sliceable, immutable
//!   byte buffer (stand-in for the `bytes` crate).
//! - [`lockdep`] — the lock-order witness behind `Mutex::named` /
//!   `RwLock::named`: a process-global lock-order graph with cycle
//!   detection at edge-insert time, so a potential ABBA deadlock is
//!   reported (or, under `DIESEL_LOCKDEP=fail`, panics) the first time
//!   the inverted *order* occurs — no deadlock needs to fire.
//!
//! Data parallelism lives one layer up in `diesel-exec`
//! (`WorkPool::for_each_chunk_mut` replaces the old `par_chunks_mut`).

pub mod bytes;
pub mod clock;
pub mod lockdep;
pub mod sync;

pub use bytes::Bytes;
pub use clock::{Clock, MockClock, SystemClock};
pub use sync::{
    lock_or_recover, read_or_recover, write_or_recover, Condvar, Mutex, MutexGuard, RwLock,
    RwLockReadGuard, RwLockWriteGuard,
};
