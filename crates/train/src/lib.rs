//! # diesel-train — deep-learning training substrate
//!
//! The paper's Fig. 13 claims chunk-wise shuffle "affects neither the
//! model accuracy nor convergence speed". That is a property of SGD and
//! the data *order*, not of any particular network, so we verify it with
//! a real (small) trainer instead of pretending to run ResNet-50:
//!
//! * [`tensor`] — row-major `f32` matrices; GEMM fans out over the
//!   `diesel-exec` work pool.
//! * [`mlp`] — a configurable multi-layer perceptron with softmax cross
//!   entropy and momentum SGD; deterministic initialization.
//! * [`data`] — seeded synthetic classification datasets (gaussian class
//!   clusters), serialized as one small binary file per sample so the
//!   dataset stresses DIESEL exactly like an image folder; plus an
//!   in-memory view for pure-algorithm tests.
//! * [`loader`] — a `DataLoader` that reads samples *through a
//!   DieselClient* in the order produced by either shuffle strategy,
//!   pipelining batched fetch and decode stages ahead of the consumer.
//! * [`trainer`] — epoch loop + top-k evaluation, the engine behind the
//!   Fig. 13 experiment.
//! * [`profiles`] — per-iteration cost profiles of the paper's four
//!   models (AlexNet, VGG-11, ResNet-18, ResNet-50) on the paper's
//!   4-node × 8-GPU testbed, calibrated from the paper's own numbers
//!   (e.g. ResNet-50 saves ≈ 80 ms/iteration with DIESEL, §6.6); these
//!   drive the time-domain experiments of Figs. 14/15.

pub mod data;
pub mod loader;
pub mod mlp;
pub mod optim;
pub mod profiles;
pub mod tensor;
pub mod trainer;

pub use data::{Sample, SyntheticSpec};
pub use loader::DataLoader;
pub use mlp::{Mlp, MlpConfig};
pub use optim::Adam;
pub use profiles::{ModelProfile, MODEL_PROFILES};
pub use tensor::Matrix;
pub use trainer::{topk_accuracy, train, EpochMetrics, TrainConfig};
