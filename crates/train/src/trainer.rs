//! Epoch loop and evaluation — the engine of the Fig. 13 experiment.

use diesel_kv::KvStore;
use diesel_store::ObjectStore;

use crate::data::{to_batch, Sample};
use crate::loader::DataLoader;
use crate::mlp::Mlp;

/// Training-run parameters.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Number of epochs.
    pub epochs: u64,
    /// Top-k values to report (Fig. 13 uses top-1 and top-5).
    pub topk: (usize, usize),
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig { epochs: 20, topk: (1, 5) }
    }
}

/// Per-epoch measurements.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochMetrics {
    /// Epoch index (0-based).
    pub epoch: u64,
    /// Mean training loss over the epoch.
    pub loss: f32,
    /// Top-1 eval accuracy after the epoch.
    pub top1: f64,
    /// Top-k (default 5) eval accuracy after the epoch.
    pub topk: f64,
}

/// Top-k accuracy of `model` on `samples`.
pub fn topk_accuracy(model: &Mlp, samples: &[Sample], k: usize) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let refs: Vec<&Sample> = samples.iter().collect();
    let (x, labels) = to_batch(&refs);
    let logits = model.forward(&x);
    let mut correct = 0usize;
    for (r, &label) in labels.iter().enumerate() {
        let row = logits.row(r);
        let own = row[label];
        // Rank of the true class = #logits strictly greater.
        let better = row.iter().filter(|&&v| v > own).count();
        if better < k {
            correct += 1;
        }
    }
    correct as f64 / samples.len() as f64
}

/// Train `model` for `config.epochs` epochs, reading data through the
/// loader (and therefore through DIESEL with whatever shuffle strategy
/// the client has enabled). Returns per-epoch metrics.
pub fn train<K: KvStore + 'static, S: ObjectStore + 'static>(
    model: &mut Mlp,
    loader: &DataLoader<K, S>,
    eval: &[Sample],
    config: &TrainConfig,
) -> diesel_core::Result<Vec<EpochMetrics>> {
    let mut out = Vec::with_capacity(config.epochs as usize);
    for epoch in 0..config.epochs {
        let mut loss_sum = 0.0f64;
        let mut n = 0u64;
        // Stream batches: the loader's pipeline fetches and decodes the
        // next batches while `train_batch` runs on this one (§4.2's
        // compute/I-O overlap).
        for batch in loader.epoch_iter(epoch)? {
            let (x, labels) = batch?;
            loss_sum += model.train_batch(&x, &labels) as f64;
            n += 1;
        }
        out.push(EpochMetrics {
            epoch,
            loss: (loss_sum / n.max(1) as f64) as f32,
            top1: topk_accuracy(model, eval, config.topk.0),
            topk: topk_accuracy(model, eval, config.topk.1),
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::SyntheticSpec;
    use crate::loader::upload_samples;
    use crate::mlp::MlpConfig;
    use diesel_core::{ClientConfig, DieselClient, DieselServer};
    use diesel_kv::ShardedKv;
    use diesel_shuffle::ShuffleKind;
    use diesel_store::MemObjectStore;
    use std::sync::Arc;

    fn run(kind: ShuffleKind, epochs: u64) -> Vec<EpochMetrics> {
        let spec = SyntheticSpec::cifar_like();
        let train_set = spec.generate(600);
        let eval_set = spec.generate_eval(200);
        let server = Arc::new(DieselServer::new(
            Arc::new(ShardedKv::new()),
            Arc::new(MemObjectStore::new()),
        ));
        let client = DieselClient::connect_with(
            server,
            "synth",
            ClientConfig {
                chunk: diesel_chunk::ChunkBuilderConfig {
                    target_chunk_size: 8192,
                    ..Default::default()
                },
            },
        )
        .with_deterministic_identity(1, 1, 100);
        upload_samples(&client, &train_set).unwrap();
        client.download_meta().unwrap();
        client.enable_shuffle(kind);
        let loader = DataLoader::new(Arc::new(client), 32, 99);
        let mut model = Mlp::new(
            MlpConfig {
                input_dim: spec.dim,
                hidden: vec![48],
                classes: spec.classes,
                lr: 0.08,
                momentum: 0.9,
            },
            7,
        );
        train(&mut model, &loader, &eval_set, &TrainConfig { epochs, topk: (1, 5) }).unwrap()
    }

    #[test]
    fn training_converges_with_dataset_shuffle() {
        let metrics = run(ShuffleKind::DatasetShuffle, 8);
        assert_eq!(metrics.len(), 8);
        let first = metrics.first().unwrap();
        let last = metrics.last().unwrap();
        assert!(last.loss < first.loss, "loss must decrease");
        assert!(last.top1 > 0.5, "top-1 {:.2} too low", last.top1);
        assert!(last.topk >= last.top1, "top-5 ≥ top-1");
        assert!(last.topk > 0.85, "top-5 {:.2} too low", last.topk);
    }

    #[test]
    fn chunk_wise_shuffle_converges_equivalently() {
        // The Fig. 13 claim, in miniature: final accuracy within a few
        // points of the dataset-shuffle baseline.
        let base = run(ShuffleKind::DatasetShuffle, 8);
        let cw = run(ShuffleKind::ChunkWise { group_size: 4 }, 8);
        let b = base.last().unwrap().top1;
        let c = cw.last().unwrap().top1;
        assert!((b - c).abs() < 0.08, "chunk-wise top-1 {c:.3} deviates from baseline {b:.3}");
    }

    #[test]
    fn topk_accuracy_edge_cases() {
        let model = Mlp::new(
            MlpConfig { input_dim: 4, hidden: vec![], classes: 3, lr: 0.1, momentum: 0.0 },
            1,
        );
        assert_eq!(topk_accuracy(&model, &[], 1), 0.0);
        let samples =
            SyntheticSpec { dim: 4, classes: 3, separation: 1.0, noise: 0.5, seed: 5 }.generate(30);
        let a1 = topk_accuracy(&model, &samples, 1);
        let a3 = topk_accuracy(&model, &samples, 3);
        assert!(a1 <= a3);
        assert!((a3 - 1.0).abs() < 1e-9, "top-k = #classes must be 100%");
    }
}
