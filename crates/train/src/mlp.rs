//! A multi-layer perceptron with momentum SGD.
//!
//! Architecture: `input → [hidden ReLU]* → logits`, softmax cross
//! entropy. Deterministic He-style initialization from a seed so
//! training runs are exactly reproducible — the Fig. 13 experiment
//! compares *shuffle strategies* with everything else held fixed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::tensor::{softmax_cross_entropy, Matrix};

/// MLP shape and optimizer hyper-parameters.
#[derive(Debug, Clone)]
pub struct MlpConfig {
    /// Input dimensionality.
    pub input_dim: usize,
    /// Hidden layer widths (empty = linear model).
    pub hidden: Vec<usize>,
    /// Number of classes.
    pub classes: usize,
    /// Learning rate.
    pub lr: f32,
    /// Momentum coefficient.
    pub momentum: f32,
}

impl Default for MlpConfig {
    fn default() -> Self {
        MlpConfig { input_dim: 32, hidden: vec![64], classes: 10, lr: 0.05, momentum: 0.9 }
    }
}

struct Layer {
    w: Matrix,
    b: Vec<f32>,
    vw: Matrix,
    vb: Vec<f32>,
}

/// The model.
pub struct Mlp {
    config: MlpConfig,
    layers: Vec<Layer>,
}

impl Mlp {
    /// Deterministically initialized model.
    pub fn new(config: MlpConfig, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut dims = vec![config.input_dim];
        dims.extend(&config.hidden);
        dims.push(config.classes);
        let layers = dims
            .windows(2)
            .map(|d| {
                let (fan_in, fan_out) = (d[0], d[1]);
                let std = (2.0 / fan_in as f32).sqrt();
                Layer {
                    w: Matrix::from_fn(fan_in, fan_out, |_, _| {
                        (rng.gen::<f32>() * 2.0 - 1.0) * std
                    }),
                    b: vec![0.0; fan_out],
                    vw: Matrix::zeros(fan_in, fan_out),
                    vb: vec![0.0; fan_out],
                }
            })
            .collect();
        Mlp { config, layers }
    }

    /// Number of trainable parameters.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(|l| l.w.data.len() + l.b.len()).sum()
    }

    /// Forward pass: returns logits (batch × classes).
    pub fn forward(&self, x: &Matrix) -> Matrix {
        let mut act = x.clone();
        let n = self.layers.len();
        for (i, layer) in self.layers.iter().enumerate() {
            let mut z = act.matmul(&layer.w);
            z.add_bias(&layer.b);
            if i + 1 < n {
                z.relu();
            }
            act = z;
        }
        act
    }

    /// One SGD step on a mini-batch. Returns the mean loss.
    pub fn train_batch(&mut self, x: &Matrix, labels: &[usize]) -> f32 {
        let n = self.layers.len();
        // Forward, keeping pre/post activations.
        let mut acts: Vec<Matrix> = Vec::with_capacity(n + 1); // post-activation inputs
        let mut pres: Vec<Matrix> = Vec::with_capacity(n); // pre-activation z
        acts.push(x.clone());
        for (i, layer) in self.layers.iter().enumerate() {
            let mut z = acts[i].matmul(&layer.w);
            z.add_bias(&layer.b);
            pres.push(z.clone());
            if i + 1 < n {
                z.relu();
            }
            acts.push(z);
        }
        let (loss, mut grad) = softmax_cross_entropy(&acts[n], labels);
        // Backward.
        for i in (0..n).rev() {
            let dw = acts[i].t_matmul(&grad);
            let db = grad.col_sums();
            let dx = if i > 0 {
                let mut dx = grad.matmul_t(&self.layers[i].w);
                dx.relu_backward(&pres[i - 1]);
                Some(dx)
            } else {
                None
            };
            let layer = &mut self.layers[i];
            // Momentum: v = m·v − lr·g; w += v.
            layer.vw.scale(self.config.momentum);
            layer.vw.axpy(-self.config.lr, &dw);
            let lr = self.config.lr;
            let mom = self.config.momentum;
            for ((vb, w), &g) in layer.vb.iter_mut().zip(layer.b.iter_mut()).zip(&db) {
                *vb = mom * *vb - lr * g;
                *w += *vb;
            }
            let vw = layer.vw.clone();
            layer.w.axpy(1.0, &vw);
            if let Some(dx) = dx {
                grad = dx;
            }
        }
        loss
    }

    /// Predicted class per row.
    pub fn predict(&self, x: &Matrix) -> Vec<usize> {
        let logits = self.forward(x);
        (0..logits.rows)
            .map(|r| {
                logits
                    .row(r)
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                    .map(|(i, _)| i)
                    .unwrap()
            })
            .collect()
    }
}

impl std::fmt::Debug for Mlp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mlp")
            .field("config", &self.config)
            .field("params", &self.param_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_batch() -> (Matrix, Vec<usize>) {
        let x = Matrix { rows: 4, cols: 2, data: vec![0.0, 0.0, 0.0, 1.0, 1.0, 0.0, 1.0, 1.0] };
        (x, vec![0, 1, 1, 0])
    }

    #[test]
    fn learns_xor() {
        let mut mlp = Mlp::new(
            MlpConfig { input_dim: 2, hidden: vec![16], classes: 2, lr: 0.2, momentum: 0.9 },
            42,
        );
        let (x, y) = xor_batch();
        let first_loss = mlp.train_batch(&x, &y);
        let mut last = first_loss;
        for _ in 0..400 {
            last = mlp.train_batch(&x, &y);
        }
        assert!(last < first_loss * 0.1, "loss {first_loss} → {last}");
        assert_eq!(mlp.predict(&x), y);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let mut m = Mlp::new(
                MlpConfig { input_dim: 2, hidden: vec![8], classes: 2, lr: 0.1, momentum: 0.9 },
                seed,
            );
            let (x, y) = xor_batch();
            (0..50).map(|_| m.train_batch(&x, &y)).last().unwrap()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn linear_model_trains_separable_data() {
        let mut m = Mlp::new(
            MlpConfig { input_dim: 1, hidden: vec![], classes: 2, lr: 0.5, momentum: 0.0 },
            1,
        );
        let x = Matrix { rows: 4, cols: 1, data: vec![-2.0, -1.0, 1.0, 2.0] };
        let y = vec![0, 0, 1, 1];
        for _ in 0..100 {
            m.train_batch(&x, &y);
        }
        assert_eq!(m.predict(&x), y);
    }

    #[test]
    fn param_count() {
        let m = Mlp::new(
            MlpConfig { input_dim: 10, hidden: vec![20], classes: 5, lr: 0.1, momentum: 0.9 },
            0,
        );
        assert_eq!(m.param_count(), 10 * 20 + 20 + 20 * 5 + 5);
    }

    #[test]
    fn loss_is_finite_under_aggressive_lr() {
        let mut m = Mlp::new(
            MlpConfig { input_dim: 2, hidden: vec![8], classes: 2, lr: 1.5, momentum: 0.9 },
            3,
        );
        let (x, y) = xor_batch();
        for _ in 0..50 {
            let loss = m.train_batch(&x, &y);
            assert!(loss.is_finite());
        }
    }
}
