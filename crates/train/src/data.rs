//! Seeded synthetic classification datasets.
//!
//! Substitutes for ImageNet-1K / CIFAR-10 (DESIGN.md §2): `classes`
//! gaussian clusters in `dim` dimensions, one small binary file per
//! sample — so reading the dataset through DIESEL exercises exactly the
//! many-small-files pattern of an image folder, while the learning
//! problem is hard enough that convergence differences between shuffle
//! strategies would show.
//!
//! Sample wire format: `label u16 ‖ dim × f32 (LE)`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::tensor::Matrix;

/// One labelled sample.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Class label.
    pub label: usize,
    /// Feature vector.
    pub features: Vec<f32>,
}

impl Sample {
    /// Serialize to the wire format.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(2 + self.features.len() * 4);
        out.extend_from_slice(&(self.label as u16).to_le_bytes());
        for f in &self.features {
            out.extend_from_slice(&f.to_le_bytes());
        }
        out
    }

    /// Deserialize.
    pub fn decode(data: &[u8]) -> Option<Sample> {
        if data.len() < 2 || !(data.len() - 2).is_multiple_of(4) {
            return None;
        }
        let label = u16::from_le_bytes(data[0..2].try_into().ok()?) as usize;
        let features =
            data[2..].chunks_exact(4).map(|c| f32::from_le_bytes(c.try_into().unwrap())).collect();
        Some(Sample { label, features })
    }
}

/// Generator parameters for a synthetic dataset.
#[derive(Debug, Clone)]
pub struct SyntheticSpec {
    /// Feature dimensionality.
    pub dim: usize,
    /// Number of classes.
    pub classes: usize,
    /// Distance scale between class centers (larger = easier).
    pub separation: f32,
    /// Per-sample gaussian noise σ.
    pub noise: f32,
    /// RNG seed (class centers and samples both derive from it).
    pub seed: u64,
}

impl SyntheticSpec {
    /// An "ImageNet-like" spec: many classes, moderate difficulty.
    pub fn imagenet_like() -> Self {
        SyntheticSpec { dim: 48, classes: 20, separation: 2.2, noise: 1.0, seed: 11 }
    }

    /// A "CIFAR-like" spec: 10 classes.
    pub fn cifar_like() -> Self {
        SyntheticSpec { dim: 24, classes: 10, separation: 2.0, noise: 1.0, seed: 13 }
    }

    fn centers(&self) -> Vec<Vec<f32>> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        (0..self.classes)
            .map(|_| {
                let v: Vec<f32> = (0..self.dim).map(|_| rng.gen::<f32>() * 2.0 - 1.0).collect();
                let norm = v.iter().map(|x| x * x).sum::<f32>().sqrt().max(1e-6);
                v.into_iter().map(|x| x / norm * self.separation).collect()
            })
            .collect()
    }

    /// Generate `n` samples (round-robin over classes, seeded noise).
    pub fn generate(&self, n: usize) -> Vec<Sample> {
        let centers = self.centers();
        let mut rng = StdRng::seed_from_u64(self.seed.wrapping_mul(0x9E37_79B9).wrapping_add(1));
        (0..n)
            .map(|i| {
                let label = i % self.classes;
                let features =
                    centers[label].iter().map(|&c| c + gauss(&mut rng) * self.noise).collect();
                Sample { label, features }
            })
            .collect()
    }

    /// Generate a disjoint evaluation set (different noise stream).
    pub fn generate_eval(&self, n: usize) -> Vec<Sample> {
        let centers = self.centers();
        let mut rng = StdRng::seed_from_u64(self.seed.wrapping_mul(0x2545_F491).wrapping_add(7));
        (0..n)
            .map(|i| {
                let label = (i * 7 + 3) % self.classes;
                let features =
                    centers[label].iter().map(|&c| c + gauss(&mut rng) * self.noise).collect();
                Sample { label, features }
            })
            .collect()
    }
}

/// Box–Muller standard normal.
fn gauss(rng: &mut StdRng) -> f32 {
    let u1: f32 = rng.gen::<f32>().max(1e-7);
    let u2: f32 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

/// Stack samples into a feature matrix and label vector.
pub fn to_batch(samples: &[&Sample]) -> (Matrix, Vec<usize>) {
    assert!(!samples.is_empty());
    let dim = samples[0].features.len();
    let mut x = Matrix::zeros(samples.len(), dim);
    let mut labels = Vec::with_capacity(samples.len());
    for (r, s) in samples.iter().enumerate() {
        x.row_mut(r).copy_from_slice(&s.features);
        labels.push(s.label);
    }
    (x, labels)
}

/// The dataset path of sample `i` (an image-folder-like layout:
/// `train/class<label>/sample<i>.bin`).
pub fn sample_path(label: usize, i: usize) -> String {
    format!("train/class{label:03}/sample{i:06}.bin")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_roundtrip() {
        let s = Sample { label: 7, features: vec![1.5, -2.25, 0.0] };
        assert_eq!(Sample::decode(&s.encode()).unwrap(), s);
        assert!(Sample::decode(&[1]).is_none());
        assert!(Sample::decode(&[0, 0, 1, 2, 3]).is_none(), "misaligned payload");
    }

    #[test]
    fn generation_is_deterministic_and_balanced() {
        let spec = SyntheticSpec::cifar_like();
        let a = spec.generate(100);
        let b = spec.generate(100);
        assert_eq!(a, b);
        let mut counts = vec![0; spec.classes];
        for s in &a {
            counts[s.label] += 1;
        }
        assert!(counts.iter().all(|&c| c == 10), "{counts:?}");
    }

    #[test]
    fn eval_set_differs_from_train() {
        let spec = SyntheticSpec::cifar_like();
        let train = spec.generate(50);
        let eval = spec.generate_eval(50);
        assert_ne!(train, eval);
    }

    #[test]
    fn classes_are_actually_separated() {
        // Nearest-center classification should beat chance easily.
        let spec = SyntheticSpec::imagenet_like();
        let centers = spec.centers();
        let eval = spec.generate_eval(400);
        let correct = eval
            .iter()
            .filter(|s| {
                let nearest = centers
                    .iter()
                    .enumerate()
                    .min_by(|(_, a), (_, b)| {
                        dist(&s.features, a).partial_cmp(&dist(&s.features, b)).unwrap()
                    })
                    .unwrap()
                    .0;
                nearest == s.label
            })
            .count();
        let acc = correct as f64 / eval.len() as f64;
        assert!(acc > 0.3, "nearest-center accuracy {acc} barely above chance");
        assert!(acc < 0.999, "dataset too easy to show convergence curves");
    }

    fn dist(a: &[f32], b: &[f32]) -> f32 {
        a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
    }

    #[test]
    fn batching() {
        let spec = SyntheticSpec::cifar_like();
        let samples = spec.generate(8);
        let refs: Vec<&Sample> = samples.iter().collect();
        let (x, labels) = to_batch(&refs);
        assert_eq!(x.rows, 8);
        assert_eq!(x.cols, spec.dim);
        assert_eq!(labels.len(), 8);
        assert_eq!(x.row(3), &samples[3].features[..]);
    }

    #[test]
    fn paths_look_like_an_image_folder() {
        assert_eq!(sample_path(3, 17), "train/class003/sample000017.bin");
    }
}
