//! A data loader that reads training samples *through DIESEL*.
//!
//! Mirrors a PyTorch `DataLoader` over an image folder: the file list
//! comes from the client's metadata snapshot, the per-epoch order from
//! the configured shuffle strategy (`DL_shuffle`), and every sample is a
//! file read through the client (task cache → server → object store).

use std::sync::Arc;

use diesel_core::{DieselClient, DieselError};
use diesel_kv::KvStore;
use diesel_store::ObjectStore;

use crate::data::{sample_path, to_batch, Sample};
use crate::tensor::Matrix;

/// Upload a sample set as one-file-per-sample through the client
/// (the data-preparation step of §2.1).
pub fn upload_samples<K: KvStore + 'static, S: ObjectStore + 'static>(
    client: &DieselClient<K, S>,
    samples: &[Sample],
) -> diesel_core::Result<()> {
    for (i, s) in samples.iter().enumerate() {
        client.put(&sample_path(s.label, i), &s.encode())?;
    }
    client.flush()?;
    Ok(())
}

/// Mini-batch iterator over a DIESEL-resident dataset.
pub struct DataLoader<K, S> {
    client: Arc<DieselClient<K, S>>,
    batch_size: usize,
    seed: u64,
}

impl<K: KvStore + 'static, S: ObjectStore + 'static> DataLoader<K, S> {
    /// Build a loader. The client must have a snapshot loaded and a
    /// shuffle strategy enabled.
    pub fn new(client: Arc<DieselClient<K, S>>, batch_size: usize, seed: u64) -> Self {
        assert!(batch_size >= 1);
        DataLoader { client, batch_size, seed }
    }

    /// The wrapped client.
    pub fn client(&self) -> &Arc<DieselClient<K, S>> {
        &self.client
    }

    /// Read one epoch as mini-batches, in this epoch's shuffled order.
    pub fn epoch_batches(&self, epoch: u64) -> diesel_core::Result<Vec<(Matrix, Vec<usize>)>> {
        let order = self.client.epoch_file_list(self.seed, epoch)?;
        let mut batches = Vec::with_capacity(order.len().div_ceil(self.batch_size));
        for chunk in order.chunks(self.batch_size) {
            let mut samples = Vec::with_capacity(chunk.len());
            for path in chunk {
                let bytes = self.client.get(path)?;
                let sample = Sample::decode(&bytes)
                    .ok_or_else(|| DieselError::Client(format!("undecodable sample {path}")))?;
                samples.push(sample);
            }
            let refs: Vec<&Sample> = samples.iter().collect();
            batches.push(to_batch(&refs));
        }
        Ok(batches)
    }

    /// Number of files per epoch.
    pub fn dataset_len(&self) -> diesel_core::Result<usize> {
        Ok(self.client.file_list()?.len())
    }
}

impl<K, S> std::fmt::Debug for DataLoader<K, S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DataLoader").field("batch_size", &self.batch_size).finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::SyntheticSpec;
    use diesel_core::DieselServer;
    use diesel_kv::ShardedKv;
    use diesel_shuffle::ShuffleKind;
    use diesel_store::MemObjectStore;

    fn setup(n: usize) -> (Arc<DieselClient<ShardedKv, MemObjectStore>>, Vec<Sample>) {
        let server = Arc::new(DieselServer::new(
            Arc::new(ShardedKv::new()),
            Arc::new(MemObjectStore::new()),
        ));
        let client = DieselClient::connect_with(
            server,
            "synth",
            diesel_core::ClientConfig {
                chunk: diesel_chunk::ChunkBuilderConfig {
                    target_chunk_size: 4096,
                    ..Default::default()
                },
            },
        )
        .with_deterministic_identity(1, 1, 100);
        let samples = SyntheticSpec::cifar_like().generate(n);
        upload_samples(&client, &samples).unwrap();
        client.download_meta().unwrap();
        client.enable_shuffle(ShuffleKind::ChunkWise { group_size: 2 });
        (Arc::new(client), samples)
    }

    #[test]
    fn epoch_covers_every_sample_once() {
        let (client, samples) = setup(57);
        let loader = DataLoader::new(client, 8, 3);
        assert_eq!(loader.dataset_len().unwrap(), 57);
        let batches = loader.epoch_batches(0).unwrap();
        assert_eq!(batches.len(), 8, "57 / 8 → 8 batches (last partial)");
        let total: usize = batches.iter().map(|(x, _)| x.rows).sum();
        assert_eq!(total, 57);
        // Label histogram must match the generated set.
        let mut want = vec![0usize; 10];
        for s in &samples {
            want[s.label] += 1;
        }
        let mut got = vec![0usize; 10];
        for (_, labels) in &batches {
            for &l in labels {
                got[l] += 1;
            }
        }
        assert_eq!(got, want);
    }

    #[test]
    fn different_epochs_have_different_orders() {
        let (client, _) = setup(40);
        let loader = DataLoader::new(client, 40, 5);
        let e0 = loader.epoch_batches(0).unwrap();
        let e1 = loader.epoch_batches(1).unwrap();
        assert_ne!(e0[0].1, e1[0].1, "epoch label orders should differ");
    }

    #[test]
    fn feature_payloads_survive_the_trip() {
        let (client, samples) = setup(20);
        let loader = DataLoader::new(client, 20, 7);
        let batches = loader.epoch_batches(0).unwrap();
        let (x, labels) = &batches[0];
        // Find a known sample by label + features.
        let s0 = &samples[0];
        let found = (0..x.rows).any(|r| labels[r] == s0.label && x.row(r) == &s0.features[..]);
        assert!(found, "sample 0 must come back bit-identical");
    }
}
