//! A data loader that reads training samples *through DIESEL*.
//!
//! Mirrors a PyTorch `DataLoader` over an image folder: the file list
//! comes from the client's metadata snapshot, the per-epoch order from
//! the configured shuffle strategy (`DL_shuffle`), and every sample is a
//! file read through the client (task cache → server → object store).
//!
//! Reads are pipelined (paper §4.2: I/O overlaps computation). Each
//! epoch runs a two-stage [`WorkPool::pipeline`]:
//!
//! 1. `loader.fetch` — the shuffled order is cut into batch-sized path
//!    groups and each group is read with [`DieselClient::get_many`],
//!    which the server merges into one ranged read per chunk (Fig. 2).
//! 2. `loader.decode` — fetched bytes are decoded and assembled into a
//!    `(Matrix, labels)` mini-batch.
//!
//! Batch *contents and order* are byte-identical for any worker count —
//! the pipeline reorders completions back to source order — so an
//! inline pool (`DIESEL_EXEC_WORKERS=1`) reproduces a threaded run
//! exactly.

use std::sync::Arc;

use diesel_core::{DieselClient, DieselError};
use diesel_exec::{PipelineIter, WorkPool};
use diesel_kv::KvStore;
use diesel_obs::{trace, Tracer};
use diesel_store::ObjectStore;
use diesel_util::Bytes;

use crate::data::{sample_path, to_batch, Sample};
use crate::tensor::Matrix;

/// Upload a sample set as one-file-per-sample through the client
/// (the data-preparation step of §2.1).
pub fn upload_samples<K: KvStore + 'static, S: ObjectStore + 'static>(
    client: &DieselClient<K, S>,
    samples: &[Sample],
) -> diesel_core::Result<()> {
    for (i, s) in samples.iter().enumerate() {
        client.put(&sample_path(s.label, i), &s.encode())?;
    }
    client.flush()?;
    Ok(())
}

/// One decoded mini-batch: features and labels, or the first error hit
/// while fetching/decoding it.
pub type BatchResult = diesel_core::Result<(Matrix, Vec<usize>)>;

/// Mini-batch iterator over a DIESEL-resident dataset.
pub struct DataLoader<K, S> {
    client: Arc<DieselClient<K, S>>,
    batch_size: usize,
    seed: u64,
    pool: WorkPool,
    prefetch_depth: usize,
    tracer: Option<Tracer>,
}

impl<K: KvStore + 'static, S: ObjectStore + 'static> DataLoader<K, S> {
    /// Build a loader. The client must have a snapshot loaded and a
    /// shuffle strategy enabled. Uses the process-wide work pool
    /// (`DIESEL_EXEC_WORKERS`); override with [`with_pool`](Self::with_pool).
    pub fn new(client: Arc<DieselClient<K, S>>, batch_size: usize, seed: u64) -> Self {
        assert!(batch_size >= 1);
        DataLoader {
            client,
            batch_size,
            seed,
            pool: diesel_exec::global().clone(),
            prefetch_depth: 2,
            tracer: None,
        }
    }

    /// Run the read pipeline on `pool` instead of the global one. An
    /// inline pool (`WorkPool::inline`) makes every epoch fully
    /// deterministic single-threaded execution.
    #[must_use]
    pub fn with_pool(mut self, pool: WorkPool) -> Self {
        self.pool = pool;
        self
    }

    /// Bound the read-ahead: at most `depth` finished batches buffer
    /// between pipeline stages before fetching blocks (backpressure).
    #[must_use]
    pub fn with_prefetch_depth(mut self, depth: usize) -> Self {
        self.prefetch_depth = depth.max(1);
        self
    }

    /// Record spans into `tracer` while reading: each batch gets a
    /// `loader.fetch{batch=i}` span (parenting the client/net/server
    /// spans of its reads) and a `loader.decode` child span, so one
    /// batch's whole journey shares a trace.
    #[must_use]
    pub fn with_tracer(mut self, tracer: Tracer) -> Self {
        self.tracer = Some(tracer);
        self
    }

    /// The wrapped client.
    pub fn client(&self) -> &Arc<DieselClient<K, S>> {
        &self.client
    }

    /// Stream one epoch as mini-batches in this epoch's shuffled order.
    ///
    /// Fetching and decoding run ahead of the consumer on the loader's
    /// work pool (bounded by the prefetch depth), so storage latency
    /// overlaps training compute. Yielded batches are identical — same
    /// order, same bytes — for any worker count.
    pub fn epoch_iter(&self, epoch: u64) -> diesel_core::Result<PipelineIter<BatchResult>> {
        let order = self.client.epoch_file_list(self.seed, epoch)?;
        let groups: Vec<Vec<String>> =
            order.chunks(self.batch_size).map(<[String]>::to_vec).collect();
        let client = Arc::clone(&self.client);
        let tracer = self.tracer.clone();
        let fetched = self.pool.pipeline(
            "loader.fetch",
            self.prefetch_depth,
            groups.into_iter().enumerate(),
            move |(i, paths): (usize, Vec<String>)| {
                let _tracer = tracer.as_ref().map(trace::install_tracer);
                let span = if trace::active() {
                    let batch = i.to_string();
                    trace::span("loader.fetch", &[("batch", batch.as_str())])
                } else {
                    trace::SpanGuard::default()
                };
                // The fetch span's context rides along to the decode
                // stage, which may run on a different worker thread.
                let ctx = span.context();
                client.get_many(&paths).map(|bytes| (paths, bytes, ctx))
            },
        );
        let tracer = self.tracer.clone();
        Ok(self.pool.pipeline("loader.decode", self.prefetch_depth, fetched, move |fetch| {
            let (paths, bytes, ctx) = fetch?;
            let _tracer = tracer.as_ref().map(trace::install_tracer);
            let _ctx = trace::install_context(ctx);
            // Decode only under a sampled fetch — an unsampled batch
            // must not mint a decode-only root trace.
            let _span = if ctx.is_some() && trace::active() {
                trace::span("loader.decode", &[])
            } else {
                trace::SpanGuard::default()
            };
            decode_batch(&paths, &bytes)
        }))
    }

    /// Read one epoch as mini-batches, in this epoch's shuffled order.
    #[deprecated(note = "materialises the whole epoch in memory; stream with `epoch_iter` instead")]
    pub fn epoch_batches(&self, epoch: u64) -> diesel_core::Result<Vec<(Matrix, Vec<usize>)>> {
        self.epoch_iter(epoch)?.collect()
    }

    /// Number of files per epoch.
    pub fn dataset_len(&self) -> diesel_core::Result<usize> {
        Ok(self.client.file_list()?.len())
    }
}

/// Decode one fetched path group into a training batch.
fn decode_batch(paths: &[String], bytes: &[Bytes]) -> BatchResult {
    // Decoding samples into tensors is the pipeline's one deliberate
    // transform copy; everything upstream of here is `Bytes` handoff.
    diesel_obs::record_copy("decode", bytes.iter().map(|b| b.len() as u64).sum());
    let mut samples = Vec::with_capacity(bytes.len());
    for (path, b) in paths.iter().zip(bytes) {
        let sample = Sample::decode(b)
            .ok_or_else(|| DieselError::Client(format!("undecodable sample {path}")))?;
        samples.push(sample);
    }
    let refs: Vec<&Sample> = samples.iter().collect();
    Ok(to_batch(&refs))
}

impl<K, S> std::fmt::Debug for DataLoader<K, S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DataLoader")
            .field("batch_size", &self.batch_size)
            .field("prefetch_depth", &self.prefetch_depth)
            .field("pool", &self.pool.name())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::SyntheticSpec;
    use diesel_core::DieselServer;
    use diesel_kv::ShardedKv;
    use diesel_shuffle::ShuffleKind;
    use diesel_store::MemObjectStore;

    fn setup(n: usize) -> (Arc<DieselClient<ShardedKv, MemObjectStore>>, Vec<Sample>) {
        let server = Arc::new(DieselServer::new(
            Arc::new(ShardedKv::new()),
            Arc::new(MemObjectStore::new()),
        ));
        let client = DieselClient::connect_with(
            server,
            "synth",
            diesel_core::ClientConfig {
                chunk: diesel_chunk::ChunkBuilderConfig {
                    target_chunk_size: 4096,
                    ..Default::default()
                },
            },
        )
        .with_deterministic_identity(1, 1, 100);
        let samples = SyntheticSpec::cifar_like().generate(n);
        upload_samples(&client, &samples).unwrap();
        client.download_meta().unwrap();
        client.enable_shuffle(ShuffleKind::ChunkWise { group_size: 2 });
        (Arc::new(client), samples)
    }

    fn collect(
        loader: &DataLoader<ShardedKv, MemObjectStore>,
        epoch: u64,
    ) -> Vec<(Matrix, Vec<usize>)> {
        loader.epoch_iter(epoch).unwrap().collect::<diesel_core::Result<Vec<_>>>().unwrap()
    }

    #[test]
    fn epoch_covers_every_sample_once() {
        let (client, samples) = setup(57);
        let loader = DataLoader::new(client, 8, 3);
        assert_eq!(loader.dataset_len().unwrap(), 57);
        let batches = collect(&loader, 0);
        assert_eq!(batches.len(), 8, "57 / 8 → 8 batches (last partial)");
        let total: usize = batches.iter().map(|(x, _)| x.rows).sum();
        assert_eq!(total, 57);
        // Label histogram must match the generated set.
        let mut want = vec![0usize; 10];
        for s in &samples {
            want[s.label] += 1;
        }
        let mut got = vec![0usize; 10];
        for (_, labels) in &batches {
            for &l in labels {
                got[l] += 1;
            }
        }
        assert_eq!(got, want);
    }

    #[test]
    fn different_epochs_have_different_orders() {
        let (client, _) = setup(40);
        let loader = DataLoader::new(client, 40, 5);
        let e0 = collect(&loader, 0);
        let e1 = collect(&loader, 1);
        assert_ne!(e0[0].1, e1[0].1, "epoch label orders should differ");
    }

    #[test]
    fn feature_payloads_survive_the_trip() {
        let (client, samples) = setup(20);
        let loader = DataLoader::new(client, 20, 7);
        let batches = collect(&loader, 0);
        let (x, labels) = &batches[0];
        // Find a known sample by label + features.
        let s0 = &samples[0];
        let found = (0..x.rows).any(|r| labels[r] == s0.label && x.row(r) == &s0.features[..]);
        assert!(found, "sample 0 must come back bit-identical");
    }

    #[test]
    fn pipelined_batches_match_inline_for_any_worker_count() {
        let (client, _) = setup(41);
        let inline =
            DataLoader::new(Arc::clone(&client), 8, 11).with_pool(WorkPool::inline("loader-test"));
        let baseline = collect(&inline, 0);
        for workers in [2usize, 8] {
            let pool = WorkPool::new(
                "loader-test",
                diesel_exec::ExecConfig { workers, queue_capacity: 0 },
            );
            let loader =
                DataLoader::new(Arc::clone(&client), 8, 11).with_pool(pool).with_prefetch_depth(3);
            let got = collect(&loader, 0);
            assert_eq!(got.len(), baseline.len());
            for (g, b) in got.iter().zip(&baseline) {
                assert_eq!(g.1, b.1, "labels diverge at workers={workers}");
                assert_eq!(g.0.data, b.0.data, "features diverge at workers={workers}");
            }
        }
    }

    #[test]
    fn deprecated_epoch_batches_still_materialises_the_epoch() {
        let (client, _) = setup(20);
        let loader = DataLoader::new(client, 6, 2);
        #[allow(deprecated)]
        let eager = loader.epoch_batches(0).unwrap();
        let streamed = collect(&loader, 0);
        assert_eq!(eager.len(), streamed.len());
        for (e, s) in eager.iter().zip(&streamed) {
            assert_eq!(e.1, s.1);
            assert_eq!(e.0.data, s.0.data);
        }
    }

    #[test]
    fn traced_epoch_links_fetch_client_server_and_decode_spans() {
        use std::collections::HashMap;
        let server = DieselServer::new(Arc::new(ShardedKv::new()), Arc::new(MemObjectStore::new()));
        // One shared tracer across server, client, and loader: every
        // span of a batch's journey lands in one buffer.
        let tracer = diesel_obs::Tracer::enabled(server.registry());
        let server = Arc::new(server.with_tracer(tracer.clone()));
        let client = DieselClient::connect_with(
            server,
            "synth",
            diesel_core::ClientConfig {
                chunk: diesel_chunk::ChunkBuilderConfig {
                    target_chunk_size: 4096,
                    ..Default::default()
                },
            },
        )
        .with_deterministic_identity(1, 1, 100)
        .with_tracer(tracer.clone());
        let samples = SyntheticSpec::cifar_like().generate(12);
        upload_samples(&client, &samples).unwrap();
        client.download_meta().unwrap();
        client.enable_shuffle(ShuffleKind::ChunkWise { group_size: 2 });
        tracer.drain(); // keep only the epoch's spans

        let pool = WorkPool::new(
            "loader-trace",
            diesel_exec::ExecConfig { workers: 2, queue_capacity: 0 },
        );
        let loader =
            DataLoader::new(Arc::new(client), 4, 3).with_pool(pool).with_tracer(tracer.clone());
        let batches = collect(&loader, 0);
        assert_eq!(batches.len(), 3);

        let spans = tracer.drain();
        let by_id: HashMap<u64, &diesel_obs::Span> = spans.iter().map(|s| (s.id, s)).collect();
        let fetches: Vec<_> = spans.iter().filter(|s| s.name == "loader.fetch").collect();
        assert_eq!(fetches.len(), 3, "one fetch span per batch");
        let decodes: Vec<_> = spans.iter().filter(|s| s.name == "loader.decode").collect();
        assert_eq!(decodes.len(), 3);
        for d in &decodes {
            let parent = by_id[&d.parent.unwrap()];
            assert_eq!(parent.name, "loader.fetch", "decode parents its batch's fetch span");
        }
        // Every batch's read reached the server inside the same trace.
        for f in &fetches {
            assert!(
                spans.iter().any(|s| s.name == "server.handle" && s.trace == f.trace),
                "fetch trace {} never produced a server.handle span",
                f.trace
            );
        }
    }

    #[test]
    fn mid_epoch_drop_is_clean() {
        let (client, _) = setup(30);
        let loader = DataLoader::new(client, 4, 9).with_prefetch_depth(2);
        let mut iter = loader.epoch_iter(0).unwrap();
        let first = iter.next().unwrap().unwrap();
        assert_eq!(first.1.len(), 4);
        drop(iter); // pipeline must cancel and join without hanging
    }
}
