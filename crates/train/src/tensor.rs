//! Minimal dense `f32` matrices with thread-parallel GEMM.
//!
//! Just enough linear algebra for an MLP: matmul in the three layouts a
//! backward pass needs, bias broadcast, and elementwise helpers. Row
//! parallelism follows the hpc-parallel guide's idiom: the outer loop
//! fans out over output rows via the shared
//! [`diesel_exec::global()`] work pool's
//! [`for_each_chunk_mut`](diesel_exec::WorkPool::for_each_chunk_mut)
//! (one contiguous run of rows per worker, global row indices), so GEMM
//! shares workers — and the `DIESEL_EXEC_WORKERS=1` determinism mode —
//! with the rest of the tree.

/// A row-major `rows × cols` matrix of `f32`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
    /// Row-major storage, `rows * cols` long.
    pub data: Vec<f32>,
}

impl Matrix {
    /// An all-zeros matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Build from a generator `f(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Borrow row `r`.
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrow row `r`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// `self @ other` — (m×k) · (k×n) → m×n.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul shape mismatch");
        let (m, k, n) = (self.rows, self.cols, other.cols);
        let mut out = Matrix::zeros(m, n);
        diesel_exec::global().for_each_chunk_mut(&mut out.data, n, |i, orow| {
            let arow = &self.data[i * k..(i + 1) * k];
            for (p, &a) in arow.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let brow = &other.data[p * n..(p + 1) * n];
                for (o, &b) in orow.iter_mut().zip(brow) {
                    *o += a * b;
                }
            }
        });
        out
    }

    /// `selfᵀ @ other` — (m×k)ᵀ · (m×n) → k×n (weight gradients).
    pub fn t_matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "t_matmul shape mismatch");
        let (m, k, n) = (self.rows, self.cols, other.cols);
        let mut out = Matrix::zeros(k, n);
        // Parallelize over output rows (columns of self).
        diesel_exec::global().for_each_chunk_mut(&mut out.data, n, |p, orow| {
            for i in 0..m {
                let a = self.data[i * k + p];
                if a == 0.0 {
                    continue;
                }
                let brow = &other.data[i * n..(i + 1) * n];
                for (o, &b) in orow.iter_mut().zip(brow) {
                    *o += a * b;
                }
            }
        });
        out
    }

    /// `self @ otherᵀ` — (m×k) · (n×k)ᵀ → m×n (input gradients).
    pub fn matmul_t(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "matmul_t shape mismatch");
        let (m, k, n) = (self.rows, self.cols, other.rows);
        let mut out = Matrix::zeros(m, n);
        diesel_exec::global().for_each_chunk_mut(&mut out.data, n, |i, orow| {
            let arow = &self.data[i * k..(i + 1) * k];
            for (j, o) in orow.iter_mut().enumerate() {
                let brow = &other.data[j * k..(j + 1) * k];
                *o = arow.iter().zip(brow).map(|(&a, &b)| a * b).sum();
            }
        });
        out
    }

    /// Add a length-`cols` bias vector to every row.
    pub fn add_bias(&mut self, bias: &[f32]) {
        assert_eq!(bias.len(), self.cols);
        for r in 0..self.rows {
            for (v, &b) in self.row_mut(r).iter_mut().zip(bias) {
                *v += b;
            }
        }
    }

    /// In-place ReLU.
    pub fn relu(&mut self) {
        for v in &mut self.data {
            if *v < 0.0 {
                *v = 0.0;
            }
        }
    }

    /// Elementwise multiply by the ReLU mask of `pre` (backward through
    /// ReLU).
    pub fn relu_backward(&mut self, pre: &Matrix) {
        assert_eq!(self.data.len(), pre.data.len());
        for (g, &p) in self.data.iter_mut().zip(&pre.data) {
            if p <= 0.0 {
                *g = 0.0;
            }
        }
    }

    /// Column sums (bias gradients).
    pub fn col_sums(&self) -> Vec<f32> {
        let mut out = vec![0.0; self.cols];
        for r in 0..self.rows {
            for (o, &v) in out.iter_mut().zip(self.row(r)) {
                *o += v;
            }
        }
        out
    }

    /// `self += alpha * other` (SGD update).
    pub fn axpy(&mut self, alpha: f32, other: &Matrix) {
        assert_eq!(self.data.len(), other.data.len());
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// Scale in place.
    pub fn scale(&mut self, s: f32) {
        for v in &mut self.data {
            *v *= s;
        }
    }
}

/// Row-wise softmax followed by cross-entropy against integer labels.
/// Returns `(mean loss, dlogits)` where `dlogits = (softmax − onehot)/B`.
pub fn softmax_cross_entropy(logits: &Matrix, labels: &[usize]) -> (f32, Matrix) {
    assert_eq!(logits.rows, labels.len());
    let b = logits.rows as f32;
    let mut grad = logits.clone();
    let mut loss = 0.0f64;
    for (r, &label) in labels.iter().enumerate() {
        let row = grad.row_mut(r);
        let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0f32;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        for v in row.iter_mut() {
            *v /= sum;
        }
        loss -= (row[label].max(1e-12)).ln() as f64;
        row[label] -= 1.0;
        for v in row.iter_mut() {
            *v /= b;
        }
    }
    ((loss / b as f64) as f32, grad)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(rows: usize, cols: usize, vals: &[f32]) -> Matrix {
        assert_eq!(vals.len(), rows * cols);
        Matrix { rows, cols, data: vals.to_vec() }
    }

    #[test]
    fn matmul_small_known() {
        let a = m(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = m(3, 2, &[7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.data, vec![58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn transposed_variants_agree_with_explicit_transpose() {
        let a = m(3, 2, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = m(3, 4, &(0..12).map(|i| i as f32).collect::<Vec<_>>());
        // aᵀ @ b via t_matmul vs manual transpose.
        let at = Matrix::from_fn(2, 3, |r, c| a.data[c * 2 + r]);
        assert_eq!(a.t_matmul(&b).data, at.matmul(&b).data);
        // a @ cᵀ via matmul_t.
        let c = m(4, 2, &(0..8).map(|i| i as f32).collect::<Vec<_>>());
        let ct = Matrix::from_fn(2, 4, |r, cc| c.data[cc * 2 + r]);
        assert_eq!(a.matmul_t(&c).data, a.matmul(&ct).data);
    }

    #[test]
    fn bias_relu_and_sums() {
        let mut x = m(2, 3, &[-1.0, 2.0, -3.0, 4.0, -5.0, 6.0]);
        x.add_bias(&[1.0, 1.0, 1.0]);
        x.relu();
        assert_eq!(x.data, vec![0.0, 3.0, 0.0, 5.0, 0.0, 7.0]);
        assert_eq!(x.col_sums(), vec![5.0, 3.0, 7.0]);
    }

    #[test]
    fn relu_backward_masks_gradient() {
        let pre = m(1, 4, &[-1.0, 0.0, 0.5, 2.0]);
        let mut g = m(1, 4, &[10.0, 10.0, 10.0, 10.0]);
        g.relu_backward(&pre);
        assert_eq!(g.data, vec![0.0, 0.0, 10.0, 10.0]);
    }

    #[test]
    fn softmax_ce_gradient_sums_to_zero_per_row() {
        let logits = m(2, 3, &[2.0, 1.0, 0.1, 0.0, 0.0, 0.0]);
        let (loss, grad) = softmax_cross_entropy(&logits, &[0, 2]);
        assert!(loss > 0.0);
        for r in 0..2 {
            let s: f32 = grad.row(r).iter().sum();
            assert!(s.abs() < 1e-6, "row {r} grad sum {s}");
        }
        // Correct-class gradient is negative.
        assert!(grad.data[0] < 0.0);
        assert!(grad.row(1)[2] < 0.0);
    }

    #[test]
    fn softmax_ce_loss_decreases_with_confidence() {
        let confident = m(1, 2, &[10.0, -10.0]);
        let unsure = m(1, 2, &[0.1, 0.0]);
        let (l1, _) = softmax_cross_entropy(&confident, &[0]);
        let (l2, _) = softmax_cross_entropy(&unsure, &[0]);
        assert!(l1 < l2);
        assert!(l1 < 1e-4);
    }

    #[test]
    fn softmax_is_stable_for_large_logits() {
        let logits = m(1, 3, &[1e4, 1e4 - 1.0, -1e4]);
        let (loss, grad) = softmax_cross_entropy(&logits, &[0]);
        assert!(loss.is_finite());
        assert!(grad.data.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn axpy_and_scale() {
        let mut a = m(1, 3, &[1.0, 2.0, 3.0]);
        let b = m(1, 3, &[10.0, 10.0, 10.0]);
        a.axpy(0.5, &b);
        assert_eq!(a.data, vec![6.0, 7.0, 8.0]);
        a.scale(2.0);
        assert_eq!(a.data, vec![12.0, 14.0, 16.0]);
    }

    #[test]
    fn parallel_matmul_matches_serial_reference() {
        let a = Matrix::from_fn(33, 47, |r, c| ((r * 31 + c * 7) % 13) as f32 - 6.0);
        let b = Matrix::from_fn(47, 29, |r, c| ((r * 17 + c * 3) % 11) as f32 - 5.0);
        let c = a.matmul(&b);
        // Serial reference.
        for i in [0usize, 13, 32] {
            for j in [0usize, 11, 28] {
                let expect: f32 = (0..47).map(|p| a.data[i * 47 + p] * b.data[p * 29 + j]).sum();
                let got = c.data[i * 29 + j];
                assert!((got - expect).abs() < 1e-3, "({i},{j}): {got} vs {expect}");
            }
        }
    }
}
