//! Cost profiles of the paper's four benchmark models (§6.6).
//!
//! The Fig. 14/15 experiments need per-iteration *compute* times for
//! AlexNet, VGG-11, ResNet-18 and ResNet-50 on the paper's testbed
//! (4 nodes × 8 V100s, global batch 256, ImageNet-1K: 5005
//! iterations/epoch, 90 epochs). The paper reports enough anchors to
//! back these out:
//!
//! * total training time on Lustre spans 37–66 h across the four models;
//! * ResNet-50 saves ≈ 80 ms/iteration on DIESEL (≈ 10 h over 90
//!   epochs), i.e. data access ≈ 160 ms/iter on Lustre and half that on
//!   DIESEL;
//! * the I/O share of total time is 29–47 % (so the total reduction is
//!   15–27 % when I/O halves).
//!
//! Data-access times themselves are *not* stored here — the experiment
//! binaries derive them from the storage simulations — only the
//! compute-side constants.

use diesel_simnet::SimTime;

/// Per-model constants for the time-domain experiments.
#[derive(Debug, Clone, Copy)]
pub struct ModelProfile {
    /// Model name as the paper spells it.
    pub name: &'static str,
    /// GPU compute time per iteration (forward+backward+allreduce) on
    /// the 32-GPU testbed at global batch 256.
    pub compute_per_iter: SimTime,
    /// Parameter count in millions (reported for context).
    pub params_m: f64,
}

/// Global batch size used throughout §6.6.
pub const GLOBAL_BATCH: usize = 256;
/// Iterations per ImageNet-1K epoch at batch 256 (paper: 5005).
pub const ITERS_PER_EPOCH: usize = 5005;
/// Epochs of a full training run (paper: "usually takes more than 90").
pub const EPOCHS: usize = 90;
/// Mean ImageNet-1K file size (paper §1: ≈ 110 KB).
pub const MEAN_FILE_BYTES: u64 = 110 << 10;

/// The four models of Figs. 14/15.
pub const MODEL_PROFILES: [ModelProfile; 4] = [
    ModelProfile { name: "AlexNet", compute_per_iter: SimTime(140_000_000), params_m: 61.1 },
    ModelProfile { name: "VGG-11", compute_per_iter: SimTime(300_000_000), params_m: 132.9 },
    ModelProfile { name: "ResNet-18", compute_per_iter: SimTime(220_000_000), params_m: 11.7 },
    ModelProfile { name: "ResNet-50", compute_per_iter: SimTime(370_000_000), params_m: 25.6 },
];

impl ModelProfile {
    /// Look up a profile by name.
    pub fn by_name(name: &str) -> Option<&'static ModelProfile> {
        MODEL_PROFILES.iter().find(|p| p.name.eq_ignore_ascii_case(name))
    }

    /// Total time for a full run given a per-iteration data-access time
    /// (the §6.6 model: access and compute pipeline, but the measured
    /// data-access time is the *stall* component, so they add).
    pub fn total_time(&self, data_access_per_iter: SimTime) -> SimTime {
        let per_iter = self.compute_per_iter + data_access_per_iter;
        SimTime::from_nanos(per_iter.as_nanos() * (ITERS_PER_EPOCH * EPOCHS) as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_by_name() {
        assert_eq!(ModelProfile::by_name("resnet-50").unwrap().name, "ResNet-50");
        assert!(ModelProfile::by_name("GPT-5").is_none());
    }

    #[test]
    fn total_times_span_papers_range_on_lustre() {
        // With the paper's ~160 ms/iter Lustre data access, totals must
        // land in the reported 37–66 h window.
        let da = SimTime::from_millis(160);
        for p in &MODEL_PROFILES {
            let hours = p.total_time(da).as_secs_f64() / 3600.0;
            assert!(
                (30.0..70.0).contains(&hours),
                "{}: {hours:.1} h outside the paper's range",
                p.name
            );
        }
    }

    #[test]
    fn halving_data_access_saves_15_to_27_percent() {
        // Fig. 15's headline, derived from the profiles.
        let da_lustre = SimTime::from_millis(160);
        let da_diesel = SimTime::from_millis(80);
        for p in &MODEL_PROFILES {
            let full = p.total_time(da_lustre).as_secs_f64();
            let fast = p.total_time(da_diesel).as_secs_f64();
            let saving = 1.0 - fast / full;
            assert!(
                (0.12..0.32).contains(&saving),
                "{}: saving {:.1}% outside Fig. 15's band",
                p.name,
                saving * 100.0
            );
        }
    }

    #[test]
    fn resnet50_saves_about_ten_hours() {
        let p = ModelProfile::by_name("ResNet-50").unwrap();
        let saved = p.total_time(SimTime::from_millis(160)).as_secs_f64()
            - p.total_time(SimTime::from_millis(80)).as_secs_f64();
        let hours = saved / 3600.0;
        assert!((8.0..12.0).contains(&hours), "saved {hours:.1} h, paper says ≈ 10 h");
    }
}
