//! Optimizers beyond plain momentum SGD.
//!
//! Fig. 13's claim — chunk-wise shuffle does not change convergence — is
//! about the interaction of data *order* with the optimizer. Momentum
//! SGD (the paper's setting) lives in [`crate::mlp`]; [`Adam`] here lets
//! the test suite check the claim is not an SGD artifact: adaptive
//! optimizers see the same gradients-in-expectation under either order.

use crate::tensor::Matrix;

/// Adam state for one parameter tensor.
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
    m: Vec<f32>,
    v: Vec<f32>,
}

impl Adam {
    /// Standard Adam with the usual defaults (β₁ 0.9, β₂ 0.999, ε 1e-8).
    pub fn new(lr: f32, params: usize) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: vec![0.0; params],
            v: vec![0.0; params],
        }
    }

    /// Custom betas.
    pub fn with_betas(mut self, beta1: f32, beta2: f32) -> Self {
        self.beta1 = beta1;
        self.beta2 = beta2;
        self
    }

    /// Apply one update step: `params -= lr * m̂ / (√v̂ + ε)`.
    pub fn step(&mut self, params: &mut [f32], grads: &[f32]) {
        assert_eq!(params.len(), self.m.len(), "parameter count changed");
        assert_eq!(params.len(), grads.len(), "grad/param mismatch");
        self.t += 1;
        let b1t = 1.0 - self.beta1.powi(self.t as i32);
        let b2t = 1.0 - self.beta2.powi(self.t as i32);
        for i in 0..params.len() {
            let g = grads[i];
            self.m[i] = self.beta1 * self.m[i] + (1.0 - self.beta1) * g;
            self.v[i] = self.beta2 * self.v[i] + (1.0 - self.beta2) * g * g;
            let mhat = self.m[i] / b1t;
            let vhat = self.v[i] / b2t;
            params[i] -= self.lr * mhat / (vhat.sqrt() + self.eps);
        }
    }

    /// Convenience: step over a matrix parameter.
    pub fn step_matrix(&mut self, params: &mut Matrix, grads: &Matrix) {
        self.step(&mut params.data, &grads.data);
    }

    /// Steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimize f(x) = (x-3)² with Adam: must converge to 3.
    #[test]
    fn converges_on_quadratic() {
        let mut adam = Adam::new(0.1, 1);
        let mut x = [0.0f32];
        for _ in 0..500 {
            let g = [2.0 * (x[0] - 3.0)];
            adam.step(&mut x, &g);
        }
        assert!((x[0] - 3.0).abs() < 0.01, "x = {}", x[0]);
        assert_eq!(adam.steps(), 500);
    }

    /// Adam normalizes per-coordinate scale: wildly different curvatures
    /// converge at similar rates (SGD would diverge or crawl).
    #[test]
    fn handles_ill_conditioned_scales() {
        let mut adam = Adam::new(0.05, 2);
        let mut x = [10.0f32, 10.0];
        for _ in 0..2000 {
            // f = 1000·x₀² + 0.001·x₁²
            let g = [2000.0 * x[0], 0.002 * x[1]];
            adam.step(&mut x, &g);
        }
        assert!(x[0].abs() < 0.05, "steep coordinate x0 = {}", x[0]);
        assert!(x[1].abs() < 5.0, "shallow coordinate x1 = {}", x[1]);
    }

    #[test]
    fn bias_correction_makes_first_step_lr_sized() {
        // With m̂/√v̂ = sign(g) after bias correction, the first step has
        // magnitude ≈ lr regardless of gradient scale.
        for scale in [1e-4f32, 1.0, 1e4] {
            let mut adam = Adam::new(0.01, 1);
            let mut x = [0.0f32];
            adam.step(&mut x, &[scale]);
            assert!((x[0].abs() - 0.01).abs() < 1e-4, "first step {} at grad scale {scale}", x[0]);
        }
    }

    #[test]
    fn step_matrix_matches_flat_step() {
        let mut a1 = Adam::new(0.1, 4);
        let mut a2 = Adam::new(0.1, 4);
        let mut flat = [1.0f32, 2.0, 3.0, 4.0];
        let mut mat = Matrix { rows: 2, cols: 2, data: flat.to_vec() };
        let grads = [0.5f32, -0.25, 0.1, -0.9];
        let gmat = Matrix { rows: 2, cols: 2, data: grads.to_vec() };
        a1.step(&mut flat, &grads);
        a2.step_matrix(&mut mat, &gmat);
        assert_eq!(mat.data, flat.to_vec());
    }

    #[test]
    #[should_panic(expected = "grad/param mismatch")]
    fn shape_mismatch_panics() {
        let mut adam = Adam::new(0.1, 2);
        let mut x = [0.0f32, 0.0];
        adam.step(&mut x, &[1.0]);
    }
}
