//! # diesel-store — shared object storage substrate
//!
//! DIESEL stores data chunks in a shared object store (Ceph via librados,
//! or a POSIX file system such as Lustre, §5). This crate provides the
//! substitutes:
//!
//! * [`ObjectStore`] — the narrow interface DIESEL needs: whole-object
//!   put/get, range get, delete, and *sorted* key listing (chunk IDs are
//!   sortable; recovery scans them in order).
//! * [`MemObjectStore`] — in-memory reference implementation
//!   ([`Bytes`] values, cheap clones).
//! * [`DirObjectStore`] — directory-backed implementation, used by the
//!   examples to persist datasets on local disk.
//! * [`DeviceModel`] + [`TimedStore`] — analytic device cost model
//!   (`t = overhead + size / bandwidth`, k-wide) calibrated against the
//!   paper's Table 2, attached to any `ObjectStore` to produce simulated
//!   completion times for the cluster-scale experiments.
//! * [`TieredStore`] — the server-side SSD/HDD cache of Fig. 4: reads hit
//!   the fast tier when cached, and a miss triggers background caching of
//!   the dataset's chunks into the fast tier.

pub mod delay;
pub mod dir;
pub mod faulty;
pub mod mem;
pub mod model;
pub mod tiered;

pub use delay::DelayedStore;
pub use diesel_util::Bytes;
pub use dir::DirObjectStore;
pub use faulty::{FaultConfig, FaultyStore};
pub use mem::MemObjectStore;
pub use model::{DeviceModel, TimedStore};
pub use tiered::{TierMetrics, TieredStore};

/// Errors from object-store operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// No object with this key.
    NotFound(String),
    /// Requested range lies outside the object.
    BadRange { key: String, offset: u64, len: usize, size: usize },
    /// Underlying I/O failure (directory-backed store).
    Io(String),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::NotFound(k) => write!(f, "object not found: {k:?}"),
            StoreError::BadRange { key, offset, len, size } => {
                write!(f, "range {offset}+{len} out of bounds for object {key:?} of {size} bytes")
            }
            StoreError::Io(e) => write!(f, "object store I/O error: {e}"),
        }
    }
}

impl std::error::Error for StoreError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, StoreError>;

/// The object-storage interface DIESEL runs on.
///
/// Keys are flat strings (encoded chunk IDs, possibly dataset-prefixed);
/// listing returns keys in lexicographic order so that chunk scans follow
/// write order (see `diesel-chunk::id`).
pub trait ObjectStore: Send + Sync {
    /// Store `value` under `key`, replacing any existing object.
    fn put(&self, key: &str, value: Bytes) -> Result<()>;

    /// Fetch a whole object.
    fn get(&self, key: &str) -> Result<Bytes>;

    /// Fetch `len` bytes at `offset`. Implementations must return exactly
    /// the in-bounds prefix if the range extends past the object end, and
    /// error only when `offset` itself is out of bounds.
    fn get_range(&self, key: &str, offset: u64, len: usize) -> Result<Bytes> {
        let whole = self.get(key)?;
        if offset as usize > whole.len() {
            return Err(StoreError::BadRange {
                key: key.to_owned(),
                offset,
                len,
                size: whole.len(),
            });
        }
        let start = offset as usize;
        let end = (start + len).min(whole.len());
        Ok(whole.slice(start..end))
    }

    /// Delete an object; returns whether it existed.
    fn delete(&self, key: &str) -> Result<bool>;

    /// Does `key` exist?
    fn contains(&self, key: &str) -> bool;

    /// All keys starting with `prefix`, in lexicographic order.
    fn list_prefix(&self, prefix: &str) -> Vec<String>;

    /// Size of the object in bytes, if present.
    fn size_of(&self, key: &str) -> Option<usize>;

    /// Number of stored objects.
    fn len(&self) -> usize;

    /// True when the store holds nothing.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total stored bytes (diagnostics).
    fn total_bytes(&self) -> u64;

    /// A snapshot of this store's metric registry, when it keeps one
    /// (e.g. [`TieredStore`] hit/promotion counters). Front-end servers
    /// merge it into their own snapshot so one read shows the whole
    /// pipeline.
    fn obs_snapshot(&self) -> Option<diesel_obs::RegistrySnapshot> {
        None
    }
}
