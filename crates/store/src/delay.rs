//! A latency-injecting [`ObjectStore`] wrapper.
//!
//! [`TimedStore`](crate::TimedStore) *reports* simulated completion
//! times; [`DelayedStore`] *spends* them: every data-moving operation
//! sleeps for the [`DeviceModel`] service time on its [`Clock`] before
//! returning. Two uses:
//!
//! * With [`SystemClock`](diesel_util::SystemClock), benchmarks see real
//!   wall-clock storage latency, so a pipelined read path's overlap of
//!   I/O and compute shows up as measured speedup (Fig. 10a in
//!   miniature).
//! * With [`MockClock`](diesel_util::MockClock), the same delays advance
//!   virtual time instantly, so tests can assert the *cost* of a read
//!   plan (how much device time it consumed) without waiting it out.

use std::sync::Arc;

use diesel_util::Clock;

use crate::{Bytes, DeviceModel, ObjectStore, Result};

/// An [`ObjectStore`] that delays each data-moving call by its modeled
/// service time. Metadata calls (`contains`, `list_prefix`, …) are free,
/// matching the paper's focus on data-path cost.
pub struct DelayedStore<S> {
    inner: Arc<S>,
    model: DeviceModel,
    clock: Arc<dyn Clock>,
}

impl<S: ObjectStore> DelayedStore<S> {
    /// Wrap `inner`, charging `model` service times against `clock`.
    pub fn new(inner: Arc<S>, model: DeviceModel, clock: Arc<dyn Clock>) -> Self {
        DelayedStore { inner, model, clock }
    }

    /// The wrapped store.
    pub fn inner(&self) -> &Arc<S> {
        &self.inner
    }

    /// The device model driving the delays.
    pub fn model(&self) -> &DeviceModel {
        &self.model
    }

    fn charge(&self, bytes: u64) {
        self.clock.sleep_ns(self.model.service_time(bytes).as_nanos());
    }
}

impl<S: ObjectStore> ObjectStore for DelayedStore<S> {
    fn put(&self, key: &str, value: Bytes) -> Result<()> {
        self.charge(value.len() as u64);
        self.inner.put(key, value)
    }

    fn get(&self, key: &str) -> Result<Bytes> {
        let data = self.inner.get(key)?;
        self.charge(data.len() as u64);
        Ok(data)
    }

    fn get_range(&self, key: &str, offset: u64, len: usize) -> Result<Bytes> {
        let data = self.inner.get_range(key, offset, len)?;
        self.charge(data.len() as u64);
        Ok(data)
    }

    fn delete(&self, key: &str) -> Result<bool> {
        self.inner.delete(key)
    }

    fn contains(&self, key: &str) -> bool {
        self.inner.contains(key)
    }

    fn list_prefix(&self, prefix: &str) -> Vec<String> {
        self.inner.list_prefix(prefix)
    }

    fn size_of(&self, key: &str) -> Option<usize> {
        self.inner.size_of(key)
    }

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn total_bytes(&self) -> u64 {
        self.inner.total_bytes()
    }

    fn obs_snapshot(&self) -> Option<diesel_obs::RegistrySnapshot> {
        self.inner.obs_snapshot()
    }
}

impl<S> std::fmt::Debug for DelayedStore<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DelayedStore").field("model", &self.model.name).finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::MemObjectStore;
    use diesel_util::{MockClock, SystemClock};

    #[test]
    fn delays_scale_with_request_size_on_a_mock_clock() {
        let clock = Arc::new(MockClock::new());
        let mem = Arc::new(MemObjectStore::new());
        let ds = DelayedStore::new(mem, DeviceModel::hdd_array(), clock.clone());
        let t0 = clock.now_ns();
        ds.put("k", Bytes::from(vec![7u8; 4 << 20])).unwrap();
        let put_cost = clock.now_ns() - t0;
        let small = DeviceModel::hdd_array().service_time(0).as_nanos();
        assert!(put_cost > small, "4 MB put must cost more than the bare overhead");
        let t1 = clock.now_ns();
        let got = ds.get_range("k", 0, 1024).unwrap();
        assert_eq!(got.len(), 1024);
        let range_cost = clock.now_ns() - t1;
        assert!(range_cost < put_cost, "1 KB range read must be cheaper than 4 MB put");
    }

    #[test]
    fn metadata_calls_are_free_and_delegate() {
        let clock = Arc::new(MockClock::new());
        let mem = Arc::new(MemObjectStore::new());
        let ds = DelayedStore::new(mem, DeviceModel::nvme_ssd_cluster(), clock.clone());
        ds.put("a/1", Bytes::from(vec![1u8; 64])).unwrap();
        let after_put = clock.now_ns();
        assert!(ds.contains("a/1"));
        assert_eq!(ds.list_prefix("a/"), vec!["a/1".to_owned()]);
        assert_eq!(ds.size_of("a/1"), Some(64));
        assert_eq!(ds.len(), 1);
        assert_eq!(ds.total_bytes(), 64);
        assert_eq!(clock.now_ns(), after_put, "metadata calls must not consume time");
        assert!(ds.delete("a/1").unwrap());
        assert!(ds.is_empty());
    }

    #[test]
    fn works_on_a_real_clock() {
        let mem = Arc::new(MemObjectStore::new());
        let ds = DelayedStore::new(mem, DeviceModel::local_nvme(), Arc::new(SystemClock::new()));
        ds.put("k", Bytes::from(vec![3u8; 128])).unwrap();
        assert_eq!(ds.get("k").unwrap().len(), 128);
    }
}
