//! Directory-backed object store.
//!
//! Objects are stored as regular files under a root directory. Keys are
//! percent-escaped so arbitrary key strings map to safe single-level file
//! names while preserving lexicographic order for the characters DIESEL
//! actually uses (the order-preserving chunk-ID alphabet is untouched by
//! the escaping).

use std::fs;
use std::io::{Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use diesel_obs::{Counter, Registry, RegistrySnapshot};

use crate::{Bytes, ObjectStore, Result, StoreError};

/// Escape a key into a file name: alphanumerics, `-`, `_`, `.` pass
/// through; everything else becomes `%XX`. `%` itself is escaped, so the
/// mapping is injective. Hex digits are uppercase, keeping escape
/// sequences ordered consistently.
fn escape_key(key: &str) -> String {
    let mut out = String::with_capacity(key.len());
    for &b in key.as_bytes() {
        match b {
            b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'-' | b'_' | b'.' => out.push(b as char),
            _ => out.push_str(&format!("%{b:02X}")),
        }
    }
    out
}

/// Invert [`escape_key`].
fn unescape_key(name: &str) -> Option<String> {
    let bytes = name.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' {
            if i + 3 > bytes.len() {
                return None;
            }
            let hex = std::str::from_utf8(&bytes[i + 1..i + 3]).ok()?;
            out.push(u8::from_str_radix(hex, 16).ok()?);
            i += 3;
        } else {
            out.push(bytes[i]);
            i += 1;
        }
    }
    String::from_utf8(out).ok()
}

/// An [`ObjectStore`] persisting each object as one file in a directory.
#[derive(Debug)]
pub struct DirObjectStore {
    root: PathBuf,
    registry: Arc<Registry>,
    gets: Counter,
    puts: Counter,
    deletes: Counter,
    bytes_read: Counter,
    bytes_written: Counter,
}

impl DirObjectStore {
    /// Open (creating if needed) a store rooted at `root`.
    pub fn open(root: impl AsRef<Path>) -> Result<Self> {
        Self::open_with_registry(root, Arc::new(Registry::default()))
    }

    /// Open a store whose metrics land in a caller-supplied registry.
    pub fn open_with_registry(root: impl AsRef<Path>, registry: Arc<Registry>) -> Result<Self> {
        let root = root.as_ref().to_path_buf();
        fs::create_dir_all(&root).map_err(|e| StoreError::Io(e.to_string()))?;
        let labels = [("device", "dir")];
        Ok(DirObjectStore {
            root,
            gets: registry.counter("store.gets", &labels),
            puts: registry.counter("store.puts", &labels),
            deletes: registry.counter("store.deletes", &labels),
            bytes_read: registry.counter("store.bytes_read", &labels),
            bytes_written: registry.counter("store.bytes_written", &labels),
            registry,
        })
    }

    /// The registry holding this store's `store.*{device=dir}` counters.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    fn path_for(&self, key: &str) -> PathBuf {
        self.root.join(escape_key(key))
    }

    fn keys(&self) -> Vec<String> {
        let mut keys: Vec<String> = match fs::read_dir(&self.root) {
            Ok(entries) => entries
                .filter_map(|e| e.ok())
                .filter(|e| e.file_type().map(|t| t.is_file()).unwrap_or(false))
                .filter_map(|e| unescape_key(&e.file_name().to_string_lossy()))
                .collect(),
            Err(_) => Vec::new(),
        };
        keys.sort_unstable();
        keys
    }
}

impl ObjectStore for DirObjectStore {
    fn put(&self, key: &str, value: Bytes) -> Result<()> {
        // Write-then-rename for atomicity under concurrent readers.
        let final_path = self.path_for(key);
        let tmp = self.root.join(format!(".tmp-{}-{}", std::process::id(), escape_key(key)));
        fs::write(&tmp, &value).map_err(|e| StoreError::Io(e.to_string()))?;
        fs::rename(&tmp, &final_path).map_err(|e| StoreError::Io(e.to_string()))?;
        self.registry.batch(|| {
            self.puts.inc();
            self.bytes_written.add(value.len() as u64);
        });
        Ok(())
    }

    fn get(&self, key: &str) -> Result<Bytes> {
        match fs::read(self.path_for(key)) {
            Ok(data) => {
                self.registry.batch(|| {
                    self.gets.inc();
                    self.bytes_read.add(data.len() as u64);
                });
                Ok(Bytes::from(data))
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                Err(StoreError::NotFound(key.to_owned()))
            }
            Err(e) => Err(StoreError::Io(e.to_string())),
        }
    }

    fn get_range(&self, key: &str, offset: u64, len: usize) -> Result<Bytes> {
        let mut f = match fs::File::open(self.path_for(key)) {
            Ok(f) => f,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Err(StoreError::NotFound(key.to_owned()))
            }
            Err(e) => return Err(StoreError::Io(e.to_string())),
        };
        let size = f.metadata().map_err(|e| StoreError::Io(e.to_string()))?.len() as usize;
        if offset as usize > size {
            return Err(StoreError::BadRange { key: key.to_owned(), offset, len, size });
        }
        f.seek(SeekFrom::Start(offset)).map_err(|e| StoreError::Io(e.to_string()))?;
        let take = len.min(size - offset as usize);
        let mut buf = vec![0u8; take];
        f.read_exact(&mut buf).map_err(|e| StoreError::Io(e.to_string()))?;
        self.registry.batch(|| {
            self.gets.inc();
            self.bytes_read.add(buf.len() as u64);
        });
        Ok(Bytes::from(buf))
    }

    fn delete(&self, key: &str) -> Result<bool> {
        match fs::remove_file(self.path_for(key)) {
            Ok(()) => {
                self.deletes.inc();
                Ok(true)
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(false),
            Err(e) => Err(StoreError::Io(e.to_string())),
        }
    }

    fn contains(&self, key: &str) -> bool {
        self.path_for(key).is_file()
    }

    fn list_prefix(&self, prefix: &str) -> Vec<String> {
        self.keys().into_iter().filter(|k| k.starts_with(prefix)).collect()
    }

    fn size_of(&self, key: &str) -> Option<usize> {
        fs::metadata(self.path_for(key)).ok().map(|m| m.len() as usize)
    }

    fn len(&self) -> usize {
        self.keys().len()
    }

    fn total_bytes(&self) -> u64 {
        self.keys().iter().filter_map(|k| self.size_of(k)).map(|s| s as u64).sum()
    }

    fn obs_snapshot(&self) -> Option<RegistrySnapshot> {
        Some(self.registry.snapshot())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let d =
            std::env::temp_dir().join(format!("diesel-store-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn escape_roundtrip() {
        for key in ["plain", "with/slash", "sp ace", "uni-ø", "%percent", "a%2Fb", ""] {
            let esc = escape_key(key);
            assert!(!esc.contains('/'), "escaped key must be flat: {esc}");
            assert_eq!(unescape_key(&esc).as_deref(), Some(key), "key {key:?}");
        }
    }

    #[test]
    fn put_get_roundtrip_on_disk() {
        let s = DirObjectStore::open(tmpdir("rt")).unwrap();
        s.put("chunk/0001", Bytes::from_static(b"payload")).unwrap();
        assert_eq!(s.get("chunk/0001").unwrap(), Bytes::from_static(b"payload"));
        assert_eq!(s.size_of("chunk/0001"), Some(7));
        assert_eq!(s.get_range("chunk/0001", 3, 2).unwrap(), Bytes::from_static(b"lo"));
        assert_eq!(s.get_range("chunk/0001", 3, 100).unwrap(), Bytes::from_static(b"load"));
        assert!(matches!(s.get_range("chunk/0001", 99, 1), Err(StoreError::BadRange { .. })));
        assert!(s.delete("chunk/0001").unwrap());
        assert!(matches!(s.get("chunk/0001"), Err(StoreError::NotFound(_))));
    }

    #[test]
    fn listing_is_sorted_and_prefix_filtered() {
        let s = DirObjectStore::open(tmpdir("ls")).unwrap();
        for k in ["b", "a/2", "a/1"] {
            s.put(k, Bytes::new()).unwrap();
        }
        assert_eq!(s.list_prefix("a/"), vec!["a/1", "a/2"]);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn counters_track_disk_traffic() {
        let s = DirObjectStore::open(tmpdir("obs")).unwrap();
        s.put("k", Bytes::from_static(b"payload")).unwrap();
        s.get("k").unwrap();
        s.get_range("k", 0, 3).unwrap();
        assert!(s.delete("k").unwrap());
        assert!(!s.delete("k").unwrap(), "second delete is a miss");
        let snap = s.obs_snapshot().unwrap();
        assert_eq!(snap.counter("store.puts{device=dir}"), 1);
        assert_eq!(snap.counter("store.bytes_written{device=dir}"), 7);
        assert_eq!(snap.counter("store.gets{device=dir}"), 2);
        assert_eq!(snap.counter("store.bytes_read{device=dir}"), 10);
        assert_eq!(snap.counter("store.deletes{device=dir}"), 1, "misses are not deletes");
    }

    #[test]
    fn overwrite_replaces_content() {
        let s = DirObjectStore::open(tmpdir("ow")).unwrap();
        s.put("k", Bytes::from_static(b"old")).unwrap();
        s.put("k", Bytes::from_static(b"newer")).unwrap();
        assert_eq!(s.get("k").unwrap(), Bytes::from_static(b"newer"));
        assert_eq!(s.total_bytes(), 5);
    }
}
