//! Failure-injecting [`ObjectStore`] wrapper.
//!
//! Wraps any store and injects deterministic, seeded faults on the read
//! path: transient I/O errors and payload bit-flips. Used by tests to
//! show that DIESEL's checksums catch corruption end-to-end and that
//! retry/fallback paths behave (chunks are CRC-protected per file, so a
//! flipped bit surfaces as `ChecksumMismatch`, never as silent wrong
//! data).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{Bytes, ObjectStore, Result, StoreError};

/// Fault configuration (probabilities per read operation).
#[derive(Debug, Clone)]
pub struct FaultConfig {
    /// Probability a `get`/`get_range` fails with a transient I/O error.
    pub io_error_rate: f64,
    /// Probability a returned payload has one bit flipped.
    pub corruption_rate: f64,
    /// RNG seed (faults are deterministic given the op sequence).
    pub seed: u64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig { io_error_rate: 0.0, corruption_rate: 0.0, seed: 0 }
    }
}

/// A store that misbehaves on purpose.
pub struct FaultyStore<S> {
    inner: Arc<S>,
    config: FaultConfig,
    ops: AtomicU64,
    injected_errors: AtomicU64,
    injected_corruptions: AtomicU64,
}

impl<S: ObjectStore> FaultyStore<S> {
    /// Wrap `inner`.
    pub fn new(inner: Arc<S>, config: FaultConfig) -> Self {
        FaultyStore {
            inner,
            config,
            ops: AtomicU64::new(0),
            injected_errors: AtomicU64::new(0),
            injected_corruptions: AtomicU64::new(0),
        }
    }

    /// (errors, corruptions) injected so far.
    pub fn injected(&self) -> (u64, u64) {
        (
            self.injected_errors.load(Ordering::Relaxed),
            self.injected_corruptions.load(Ordering::Relaxed),
        )
    }

    fn roll(&self) -> StdRng {
        let n = self.ops.fetch_add(1, Ordering::Relaxed);
        StdRng::seed_from_u64(self.config.seed ^ n.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    fn maybe_fault(&self, key: &str, data: Bytes) -> Result<Bytes> {
        let mut rng = self.roll();
        if rng.gen_bool(self.config.io_error_rate.clamp(0.0, 1.0)) {
            self.injected_errors.fetch_add(1, Ordering::Relaxed);
            return Err(StoreError::Io(format!("injected transient error reading {key}")));
        }
        if !data.is_empty() && rng.gen_bool(self.config.corruption_rate.clamp(0.0, 1.0)) {
            self.injected_corruptions.fetch_add(1, Ordering::Relaxed);
            // The only copy in this store: flipping a bit needs a private
            // buffer. The clean path below returns `data` untouched.
            diesel_obs::record_copy("corruption", data.len() as u64);
            let mut v = data.to_vec();
            let pos = rng.gen_range(0..v.len());
            v[pos] ^= 1u8 << rng.gen_range(0..8u32);
            return Ok(Bytes::from(v));
        }
        Ok(data)
    }
}

impl<S: ObjectStore> ObjectStore for FaultyStore<S> {
    fn put(&self, key: &str, value: Bytes) -> Result<()> {
        self.inner.put(key, value)
    }

    fn get(&self, key: &str) -> Result<Bytes> {
        let data = self.inner.get(key)?;
        self.maybe_fault(key, data)
    }

    fn get_range(&self, key: &str, offset: u64, len: usize) -> Result<Bytes> {
        let data = self.inner.get_range(key, offset, len)?;
        self.maybe_fault(key, data)
    }

    fn delete(&self, key: &str) -> Result<bool> {
        self.inner.delete(key)
    }

    fn contains(&self, key: &str) -> bool {
        self.inner.contains(key)
    }

    fn list_prefix(&self, prefix: &str) -> Vec<String> {
        self.inner.list_prefix(prefix)
    }

    fn size_of(&self, key: &str) -> Option<usize> {
        self.inner.size_of(key)
    }

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn total_bytes(&self) -> u64 {
        self.inner.total_bytes()
    }
}

impl<S> std::fmt::Debug for FaultyStore<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultyStore").field("config", &self.config).finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::MemObjectStore;

    fn store(io: f64, corrupt: f64) -> FaultyStore<MemObjectStore> {
        let inner = Arc::new(MemObjectStore::new());
        inner.put("k", Bytes::from(vec![0u8; 1024])).unwrap();
        FaultyStore::new(
            inner,
            FaultConfig { io_error_rate: io, corruption_rate: corrupt, seed: 42 },
        )
    }

    #[test]
    fn no_faults_means_passthrough() {
        let s = store(0.0, 0.0);
        for _ in 0..100 {
            assert_eq!(s.get("k").unwrap().len(), 1024);
        }
        assert_eq!(s.injected(), (0, 0));
    }

    #[test]
    fn io_errors_injected_at_configured_rate() {
        let s = store(0.3, 0.0);
        let mut errors = 0;
        for _ in 0..1000 {
            if s.get("k").is_err() {
                errors += 1;
            }
        }
        assert!((200..420).contains(&errors), "rate off: {errors}/1000");
        assert_eq!(s.injected().0, errors);
    }

    #[test]
    fn corruption_flips_exactly_one_bit() {
        let s = store(0.0, 1.0);
        let data = s.get("k").unwrap();
        let diff: u32 = data.iter().map(|&b| b.count_ones()).sum();
        assert_eq!(diff, 1, "exactly one bit must differ from all-zeros");
        assert_eq!(s.injected().1, 1);
    }

    #[test]
    fn faults_are_deterministic_per_sequence() {
        let a = store(0.5, 0.0);
        let b = store(0.5, 0.0);
        let pat_a: Vec<bool> = (0..200).map(|_| a.get("k").is_err()).collect();
        let pat_b: Vec<bool> = (0..200).map(|_| b.get("k").is_err()).collect();
        assert_eq!(pat_a, pat_b);
    }

    #[test]
    fn writes_and_metadata_ops_are_never_faulted() {
        let s = store(1.0, 0.0);
        s.put("new", Bytes::from_static(b"x")).unwrap();
        assert!(s.contains("new"));
        assert_eq!(s.len(), 2);
        assert!(s.delete("new").unwrap());
    }
}
