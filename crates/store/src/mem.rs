//! In-memory object store: the reference [`ObjectStore`] implementation.

use diesel_util::RwLock;
use std::collections::BTreeMap;

use crate::{Bytes, ObjectStore, Result, StoreError};

/// An ordered, in-memory object store.
///
/// Values are [`Bytes`], so `get` is a refcount bump, not a copy — large
/// chunks flow through the caching layers without duplication.
#[derive(Debug)]
pub struct MemObjectStore {
    objects: RwLock<BTreeMap<String, Bytes>>,
}

impl Default for MemObjectStore {
    fn default() -> Self {
        Self::new()
    }
}

impl MemObjectStore {
    /// An empty store.
    pub fn new() -> Self {
        MemObjectStore { objects: RwLock::named("store.mem_objects", BTreeMap::new()) }
    }

    /// Remove every object (test/diagnostic helper).
    pub fn clear(&self) {
        self.objects.write().clear();
    }
}

impl ObjectStore for MemObjectStore {
    fn put(&self, key: &str, value: Bytes) -> Result<()> {
        self.objects.write().insert(key.to_owned(), value);
        Ok(())
    }

    fn get(&self, key: &str) -> Result<Bytes> {
        self.objects.read().get(key).cloned().ok_or_else(|| StoreError::NotFound(key.to_owned()))
    }

    fn delete(&self, key: &str) -> Result<bool> {
        Ok(self.objects.write().remove(key).is_some())
    }

    fn contains(&self, key: &str) -> bool {
        self.objects.read().contains_key(key)
    }

    fn list_prefix(&self, prefix: &str) -> Vec<String> {
        self.objects
            .read()
            .range(prefix.to_owned()..)
            .take_while(|(k, _)| k.starts_with(prefix))
            .map(|(k, _)| k.clone())
            .collect()
    }

    fn size_of(&self, key: &str) -> Option<usize> {
        self.objects.read().get(key).map(|b| b.len())
    }

    fn len(&self) -> usize {
        self.objects.read().len()
    }

    fn total_bytes(&self) -> u64 {
        self.objects.read().values().map(|b| b.len() as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn put_get_delete() {
        let s = MemObjectStore::new();
        s.put("a", Bytes::from_static(b"hello")).unwrap();
        assert_eq!(s.get("a").unwrap(), Bytes::from_static(b"hello"));
        assert_eq!(s.size_of("a"), Some(5));
        assert!(s.contains("a"));
        assert!(s.delete("a").unwrap());
        assert!(!s.delete("a").unwrap());
        assert!(matches!(s.get("a"), Err(StoreError::NotFound(_))));
    }

    #[test]
    fn range_reads_clamp_to_object_end() {
        let s = MemObjectStore::new();
        s.put("k", Bytes::from_static(b"0123456789")).unwrap();
        assert_eq!(s.get_range("k", 3, 4).unwrap(), Bytes::from_static(b"3456"));
        assert_eq!(s.get_range("k", 8, 100).unwrap(), Bytes::from_static(b"89"));
        assert_eq!(s.get_range("k", 10, 1).unwrap(), Bytes::new());
        assert!(matches!(s.get_range("k", 11, 1), Err(StoreError::BadRange { .. })));
    }

    #[test]
    fn list_prefix_sorted() {
        let s = MemObjectStore::new();
        for k in ["c/2", "c/1", "c/10", "d/1"] {
            s.put(k, Bytes::new()).unwrap();
        }
        assert_eq!(s.list_prefix("c/"), vec!["c/1", "c/10", "c/2"]);
        assert_eq!(s.list_prefix(""), vec!["c/1", "c/10", "c/2", "d/1"]);
        assert!(s.list_prefix("zzz").is_empty());
    }

    #[test]
    fn accounting() {
        let s = MemObjectStore::new();
        assert!(s.is_empty());
        s.put("a", Bytes::from(vec![0u8; 100])).unwrap();
        s.put("b", Bytes::from(vec![0u8; 50])).unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.total_bytes(), 150);
        s.put("a", Bytes::from(vec![0u8; 10])).unwrap(); // overwrite
        assert_eq!(s.total_bytes(), 60);
        s.clear();
        assert!(s.is_empty());
    }

    #[test]
    fn concurrent_put_get() {
        let s = Arc::new(MemObjectStore::new());
        let writers: Vec<_> = (0..4)
            .map(|t| {
                let s = s.clone();
                std::thread::spawn(move || {
                    for i in 0..500 {
                        s.put(&format!("t{t}/o{i}"), Bytes::from(vec![t as u8; 64])).unwrap();
                    }
                })
            })
            .collect();
        for w in writers {
            w.join().unwrap();
        }
        assert_eq!(s.len(), 2000);
        assert_eq!(s.get("t3/o499").unwrap(), Bytes::from(vec![3u8; 64]));
    }
}
