//! Analytic storage device cost models, calibrated against the paper's
//! Table 2.
//!
//! Table 2 measures an SSD-based storage cluster: 1 KB files read at
//! ~34 k files/s (33.5 MB/s) while 4 MB reads sustain ~3.2 GB/s. The
//! two-parameter model `t(S) = overhead + S / bandwidth` reproduces the
//! whole table within ~15 % (most rows within 5 %) — small reads are
//! overhead-bound, large reads bandwidth-bound, which is exactly the
//! asymmetry DIESEL's chunk design exploits. The Table 2 experiment
//! binary prints the fit against the paper's rows.

use std::sync::Arc;

use diesel_obs::{Counter, HistogramHandle, Registry};
use diesel_simnet::{Resource, SimTime};

use crate::{Bytes, ObjectStore, Result};

/// An analytic model of one storage device/cluster front.
#[derive(Debug, Clone)]
pub struct DeviceModel {
    /// Human-readable device name for reports.
    pub name: &'static str,
    /// Fixed per-request service overhead (seek + request processing).
    pub per_request_overhead: SimTime,
    /// Streaming bandwidth in bytes/second.
    pub bytes_per_sec: f64,
    /// Internal parallelism: how many requests the device services
    /// concurrently at full speed (queue pairs / spindles / OSTs).
    pub parallelism: usize,
}

impl DeviceModel {
    /// The paper's NVMe-SSD storage cluster (Table 2 fit):
    /// overhead ≈ 28 µs, bandwidth ≈ 3.3 GB/s.
    pub fn nvme_ssd_cluster() -> Self {
        DeviceModel {
            name: "nvme-ssd-cluster",
            per_request_overhead: SimTime::from_micros(28),
            bytes_per_sec: 3.35e9,
            parallelism: 1,
        }
    }

    /// An HDD-based tier (the "slower object-storage" of Fig. 4):
    /// seek-dominated small reads, modest streaming bandwidth.
    pub fn hdd_array() -> Self {
        DeviceModel {
            name: "hdd-array",
            per_request_overhead: SimTime::from_millis(6),
            bytes_per_sec: 400.0e6,
            parallelism: 4,
        }
    }

    /// A single local NVMe SSD (the XFS device of Fig. 10c).
    pub fn local_nvme() -> Self {
        DeviceModel {
            name: "local-nvme",
            per_request_overhead: SimTime::from_micros(12),
            bytes_per_sec: 2.8e9,
            parallelism: 8,
        }
    }

    /// Service time for one request of `bytes`.
    pub fn service_time(&self, bytes: u64) -> SimTime {
        self.per_request_overhead + SimTime::for_bytes(bytes, self.bytes_per_sec)
    }

    /// Steady-state throughput in requests/second for uniform requests of
    /// `bytes` (the quantity Table 2 reports as Files/Second).
    pub fn files_per_sec(&self, bytes: u64) -> f64 {
        self.parallelism as f64 / self.service_time(bytes).as_secs_f64()
    }

    /// Steady-state bandwidth in MB/s for uniform requests of `bytes`.
    pub fn bandwidth_mb_per_sec(&self, bytes: u64) -> f64 {
        self.files_per_sec(bytes) * bytes as f64 / 1e6
    }

    /// Equivalent 4K-IOPS (Table 2's last column): files/s × (size / 4 KB).
    pub fn equivalent_4k_iops(&self, bytes: u64) -> f64 {
        self.files_per_sec(bytes) * bytes as f64 / 4096.0
    }
}

/// An [`ObjectStore`] paired with a [`DeviceModel`]-driven [`Resource`]:
/// real bytes move, and every operation also returns the simulated time
/// at which it would have completed on the modeled device. Each request
/// feeds `store.requests`/`store.bytes` counters and a
/// `store.service_time` histogram, all labelled `{device=<model name>}`.
pub struct TimedStore<S> {
    inner: Arc<S>,
    model: DeviceModel,
    device: Resource,
    registry: Arc<Registry>,
    requests: Counter,
    bytes: Counter,
    service_time: HistogramHandle,
}

impl<S: ObjectStore> TimedStore<S> {
    /// Wrap `inner` with `model` timing and a private registry.
    pub fn new(inner: Arc<S>, model: DeviceModel) -> Self {
        Self::with_registry(inner, model, Arc::new(Registry::default()))
    }

    /// Wrap `inner` with `model` timing, recording device metrics into a
    /// shared `registry`.
    pub fn with_registry(inner: Arc<S>, model: DeviceModel, registry: Arc<Registry>) -> Self {
        let device = Resource::new(model.name, model.parallelism);
        let labels = [("device", model.name)];
        let requests = registry.counter("store.requests", &labels);
        let bytes = registry.counter("store.bytes", &labels);
        let service_time = registry.histogram("store.service_time", &labels);
        TimedStore { inner, model, device, registry, requests, bytes, service_time }
    }

    /// The wrapped store.
    pub fn inner(&self) -> &Arc<S> {
        &self.inner
    }

    /// The device model.
    pub fn model(&self) -> &DeviceModel {
        &self.model
    }

    /// The shared device resource (for utilization reporting).
    pub fn device(&self) -> &Resource {
        &self.device
    }

    /// The registry holding this store's device metrics.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    fn record(&self, bytes: u64, service: SimTime) {
        self.requests.inc();
        self.bytes.add(bytes);
        self.service_time.record_ns(service.as_nanos());
    }

    /// Timed whole-object get: returns the data and the simulated
    /// completion time for a request issued at `now`.
    pub fn get_at(&self, now: SimTime, key: &str) -> Result<(Bytes, SimTime)> {
        let data = self.inner.get(key)?;
        let service = self.model.service_time(data.len() as u64);
        self.record(data.len() as u64, service);
        let grant = self.device.acquire(now, service);
        Ok((data, grant.end))
    }

    /// Timed range get.
    pub fn get_range_at(
        &self,
        now: SimTime,
        key: &str,
        offset: u64,
        len: usize,
    ) -> Result<(Bytes, SimTime)> {
        let data = self.inner.get_range(key, offset, len)?;
        let service = self.model.service_time(data.len() as u64);
        self.record(data.len() as u64, service);
        let grant = self.device.acquire(now, service);
        Ok((data, grant.end))
    }

    /// Timed put.
    pub fn put_at(&self, now: SimTime, key: &str, value: Bytes) -> Result<SimTime> {
        let size = value.len() as u64;
        let service = self.model.service_time(size);
        self.inner.put(key, value)?;
        self.record(size, service);
        Ok(self.device.acquire(now, service).end)
    }

    /// Simulated cost of a pure-timing request (no data movement) — used
    /// by baselines that model foreign systems.
    pub fn charge(&self, now: SimTime, bytes: u64) -> SimTime {
        let service = self.model.service_time(bytes);
        self.record(bytes, service);
        self.device.acquire(now, service).end
    }
}

/// The rows of the paper's Table 2, for calibration tests and the
/// `table2` experiment binary: `(file size bytes, MB/s, files/s)`.
pub const TABLE2_PAPER_ROWS: [(u64, f64, f64); 7] = [
    (1 << 10, 33.54, 34353.45),
    (4 << 10, 128.28, 32841.47),
    (16 << 10, 464.44, 29724.48),
    (64 << 10, 1317.04, 21072.64),
    (256 << 10, 2725.93, 10903.72),
    (1 << 20, 3104.26, 3104.26),
    (4 << 20, 3197.68, 799.42),
];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::MemObjectStore;

    #[test]
    fn ssd_model_reproduces_table2_shape() {
        let m = DeviceModel::nvme_ssd_cluster();
        for (size, _mb, paper_files) in TABLE2_PAPER_ROWS {
            let ours = m.files_per_sec(size);
            let err = (ours - paper_files).abs() / paper_files;
            assert!(
                err < 0.20,
                "size {size}: model {ours:.0} vs paper {paper_files:.0} files/s ({:.0}% off)",
                err * 100.0
            );
        }
    }

    #[test]
    fn large_reads_multiply_effective_iops() {
        // Table 2's headline: 4 MB reads deliver ~25× the equivalent
        // 4K-IOPS of 4 KB reads.
        let m = DeviceModel::nvme_ssd_cluster();
        let ratio = m.equivalent_4k_iops(4 << 20) / m.equivalent_4k_iops(4 << 10);
        assert!(ratio > 20.0 && ratio < 30.0, "ratio = {ratio:.1}");
    }

    #[test]
    fn bandwidth_monotone_in_size() {
        let m = DeviceModel::nvme_ssd_cluster();
        let mut prev = 0.0;
        for size in [1u64 << 10, 1 << 12, 1 << 14, 1 << 16, 1 << 20, 1 << 22] {
            let bw = m.bandwidth_mb_per_sec(size);
            assert!(bw > prev, "bandwidth must increase with request size");
            prev = bw;
        }
        // And saturates near the device limit.
        assert!(prev > 3000.0 && prev < 3350.0, "peak bw {prev:.0} MB/s");
    }

    #[test]
    fn hdd_much_slower_than_ssd_on_small_reads() {
        let ssd = DeviceModel::nvme_ssd_cluster();
        let hdd = DeviceModel::hdd_array();
        let ratio = ssd.files_per_sec(4096) / hdd.files_per_sec(4096);
        assert!(ratio > 20.0, "ssd/hdd small-read ratio = {ratio:.0}");
    }

    #[test]
    fn timed_store_moves_real_bytes_and_time() {
        let mem = Arc::new(MemObjectStore::new());
        let ts = TimedStore::new(mem, DeviceModel::nvme_ssd_cluster());
        let t1 = ts.put_at(SimTime::ZERO, "k", Bytes::from(vec![7u8; 4096])).unwrap();
        assert!(t1 > SimTime::ZERO);
        let (data, t2) = ts.get_at(t1, "k").unwrap();
        assert_eq!(data.len(), 4096);
        assert!(t2 > t1);
        let (part, _) = ts.get_range_at(t2, "k", 0, 100).unwrap();
        assert_eq!(part.len(), 100);
        let snap = ts.registry().snapshot();
        assert_eq!(snap.counter("store.requests{device=nvme-ssd-cluster}"), 3);
        assert_eq!(snap.counter("store.bytes{device=nvme-ssd-cluster}"), 4096 + 4096 + 100);
        let hist = snap
            .histogram("store.service_time{device=nvme-ssd-cluster}")
            .expect("service-time histogram registered");
        assert_eq!(hist.count(), 3);
    }

    #[test]
    fn timed_store_serializes_on_device_parallelism() {
        let mem = Arc::new(MemObjectStore::new());
        mem.put("k", Bytes::from(vec![0u8; 1 << 20])).unwrap();
        let ts = TimedStore::new(mem, DeviceModel::nvme_ssd_cluster()); // parallelism 1
        let (_, t1) = ts.get_at(SimTime::ZERO, "k").unwrap();
        let (_, t2) = ts.get_at(SimTime::ZERO, "k").unwrap();
        assert!(t2 > t1, "second request must queue behind the first");
        assert!(t2.as_nanos() >= 2 * t1.as_nanos() - 1000);
    }
}
