//! The DIESEL server-side cache: a fast (SSD) tier over a slow (HDD)
//! tier (read flow of Fig. 4).
//!
//! "If the server cache is enabled and the corresponding data chunks are
//! cached in the fast object-storage, the file read requests will be sent
//! to the fast object-store system. Otherwise the slower object-storage
//! system will handle the requests. If a cache miss occurs on the
//! server-side, the server will start to cache the dataset in the
//! background."
//!
//! Chunk-granular promotion with LRU eviction bounded by a fast-tier
//! capacity. Promotion here is synchronous (the simulated-time layer
//! charges its cost separately); a `promote_prefix` helper performs the
//! background "cache the dataset" sweep. Read-path counters live in a
//! `diesel-obs` registry under `store.*`.

use diesel_obs::{trace, Counter, Gauge, Registry, RegistrySnapshot};
use diesel_util::Mutex;
use std::collections::VecDeque;
use std::sync::Arc;

use crate::{Bytes, ObjectStore, Result, StoreError};

/// Handles into the registry for the tiered read path.
#[derive(Debug, Clone)]
pub struct TierMetrics {
    fast_hits: Counter,
    slow_hits: Counter,
    promotions: Counter,
    evictions: Counter,
    resident_bytes: Gauge,
}

impl TierMetrics {
    /// Register the tier counters (`store.fast_hits`, `store.slow_hits`,
    /// `store.promotions`, `store.evictions`) and the
    /// `store.fast_resident_bytes` gauge in `registry`.
    pub fn new(registry: &Registry) -> Self {
        TierMetrics {
            fast_hits: registry.counter("store.fast_hits", &[]),
            slow_hits: registry.counter("store.slow_hits", &[]),
            promotions: registry.counter("store.promotions", &[]),
            evictions: registry.counter("store.evictions", &[]),
            resident_bytes: registry.gauge("store.fast_resident_bytes", &[]),
        }
    }

    /// Reads served by the fast tier.
    pub fn fast_hits(&self) -> u64 {
        self.fast_hits.get()
    }

    /// Reads served by the slow tier.
    pub fn slow_hits(&self) -> u64 {
        self.slow_hits.get()
    }

    /// Chunks promoted into the fast tier.
    pub fn promotions(&self) -> u64 {
        self.promotions.get()
    }

    /// Chunks evicted from the fast tier.
    pub fn evictions(&self) -> u64 {
        self.evictions.get()
    }
}

/// A two-tier object store with LRU promotion.
pub struct TieredStore<F, S> {
    fast: Arc<F>,
    slow: Arc<S>,
    fast_capacity_bytes: u64,
    state: Mutex<LruState>,
    registry: Arc<Registry>,
    metrics: TierMetrics,
}

#[derive(Debug, Default)]
struct LruState {
    /// Keys resident in the fast tier, least-recently-used first.
    lru: VecDeque<String>,
    resident_bytes: u64,
}

impl<F: ObjectStore, S: ObjectStore> TieredStore<F, S> {
    /// Build a tiered store with a private registry;
    /// `fast_capacity_bytes` bounds the fast tier.
    pub fn new(fast: Arc<F>, slow: Arc<S>, fast_capacity_bytes: u64) -> Self {
        Self::with_registry(fast, slow, fast_capacity_bytes, Arc::new(Registry::default()))
    }

    /// Build a tiered store whose counters land in a shared `registry`.
    pub fn with_registry(
        fast: Arc<F>,
        slow: Arc<S>,
        fast_capacity_bytes: u64,
        registry: Arc<Registry>,
    ) -> Self {
        let metrics = TierMetrics::new(&registry);
        TieredStore {
            fast,
            slow,
            fast_capacity_bytes,
            state: Mutex::named("store.tiered_lru", LruState::default()),
            registry,
            metrics,
        }
    }

    /// Write-through put: new objects land in the slow (authoritative)
    /// tier; the fast tier fills on read.
    pub fn put(&self, key: &str, value: Bytes) -> Result<()> {
        self.slow.put(key, value)
    }

    /// Read an object, promoting it into the fast tier.
    pub fn get(&self, key: &str) -> Result<Bytes> {
        let mut span = if trace::active() {
            trace::span("store.get", &[("key", key)])
        } else {
            trace::SpanGuard::default()
        };
        if let Ok(data) = self.fast.get(key) {
            touch(&mut self.state.lock().lru, key);
            self.metrics.fast_hits.inc();
            span.label("tier", "fast");
            return Ok(data);
        }
        let data = self.slow.get(key)?;
        self.metrics.slow_hits.inc();
        span.label("tier", "slow");
        self.promote(key, data.clone())?;
        Ok(data)
    }

    /// Which tier would serve `key` right now? (`true` = fast.)
    pub fn is_fast_resident(&self, key: &str) -> bool {
        self.fast.contains(key)
    }

    /// Copy one object into the fast tier (evicting LRU victims as
    /// needed). Idempotent.
    pub fn promote(&self, key: &str, data: Bytes) -> Result<()> {
        if self.fast.contains(key) {
            return Ok(());
        }
        let size = data.len() as u64;
        if size > self.fast_capacity_bytes {
            return Ok(()); // cannot ever fit; serve from slow tier
        }
        let mut st = self.state.lock();
        while st.resident_bytes + size > self.fast_capacity_bytes {
            let Some(victim) = st.lru.pop_front() else { break };
            if let Some(vsize) = self.fast.size_of(&victim) {
                self.fast.delete(&victim)?;
                st.resident_bytes -= vsize as u64;
                self.metrics.evictions.inc();
            }
        }
        self.fast.put(key, data)?;
        st.lru.push_back(key.to_owned());
        st.resident_bytes += size;
        self.metrics.resident_bytes.set(st.resident_bytes);
        self.metrics.promotions.inc();
        Ok(())
    }

    /// The background dataset-caching sweep: promote every slow-tier
    /// object under `prefix` (in key order) until the fast tier is full.
    /// Returns how many objects were promoted.
    pub fn promote_prefix(&self, prefix: &str) -> Result<usize> {
        let mut promoted = 0;
        for key in self.slow.list_prefix(prefix) {
            if self.fast.contains(&key) {
                continue;
            }
            let size = self.slow.size_of(&key).unwrap_or(0) as u64;
            {
                let st = self.state.lock();
                if st.resident_bytes + size > self.fast_capacity_bytes {
                    break; // fast tier full: stop the sweep, don't thrash
                }
            }
            let data = self.slow.get(&key)?;
            self.promote(&key, data)?;
            promoted += 1;
        }
        Ok(promoted)
    }

    /// Delete from both tiers.
    pub fn delete(&self, key: &str) -> Result<bool> {
        let mut st = self.state.lock();
        if let Some(pos) = st.lru.iter().position(|k| k == key) {
            st.lru.remove(pos);
            if let Some(size) = self.fast.size_of(key) {
                st.resident_bytes -= size as u64;
            }
            self.metrics.resident_bytes.set(st.resident_bytes);
        }
        drop(st);
        self.fast.delete(key)?;
        self.slow.delete(key)
    }

    /// Read-path counter handles.
    pub fn metrics(&self) -> &TierMetrics {
        &self.metrics
    }

    /// The registry holding this store's counters.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// Bytes currently resident in the fast tier.
    pub fn fast_resident_bytes(&self) -> u64 {
        self.state.lock().resident_bytes
    }

    /// The slow (authoritative) tier.
    pub fn slow(&self) -> &Arc<S> {
        &self.slow
    }

    /// The fast tier.
    pub fn fast(&self) -> &Arc<F> {
        &self.fast
    }
}

fn touch(lru: &mut VecDeque<String>, key: &str) {
    if let Some(pos) = lru.iter().position(|k| k == key) {
        if let Some(k) = lru.remove(pos) {
            lru.push_back(k);
        }
    }
}

/// `TieredStore` is itself an [`ObjectStore`], so a `DieselServer` can
/// run directly on top of an SSD/HDD pair (the server cache of Fig. 4):
/// reads promote chunks into the fast tier transparently.
impl<F: ObjectStore, S: ObjectStore> ObjectStore for TieredStore<F, S> {
    fn put(&self, key: &str, value: Bytes) -> Result<()> {
        TieredStore::put(self, key, value)
    }

    fn get(&self, key: &str) -> Result<Bytes> {
        TieredStore::get(self, key)
    }

    fn get_range(&self, key: &str, offset: u64, len: usize) -> Result<Bytes> {
        // Serve ranges from whichever tier holds the object; a fast-tier
        // range read must not force a whole-object promotion.
        if self.fast.contains(key) {
            touch(&mut self.state.lock().lru, key);
            self.metrics.fast_hits.inc();
            return self.fast.get_range(key, offset, len);
        }
        let out = self.slow.get_range(key, offset, len)?;
        self.metrics.slow_hits.inc();
        Ok(out)
    }

    fn delete(&self, key: &str) -> Result<bool> {
        TieredStore::delete(self, key)
    }

    fn contains(&self, key: &str) -> bool {
        self.fast.contains(key) || self.slow.contains(key)
    }

    fn list_prefix(&self, prefix: &str) -> Vec<String> {
        // The slow tier is authoritative.
        self.slow.list_prefix(prefix)
    }

    fn size_of(&self, key: &str) -> Option<usize> {
        self.slow.size_of(key).or_else(|| self.fast.size_of(key))
    }

    fn len(&self) -> usize {
        self.slow.len()
    }

    fn total_bytes(&self) -> u64 {
        self.slow.total_bytes()
    }

    fn obs_snapshot(&self) -> Option<RegistrySnapshot> {
        Some(self.registry.snapshot())
    }
}

impl<F: ObjectStore, S: ObjectStore> std::fmt::Debug for TieredStore<F, S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TieredStore")
            .field("fast_capacity_bytes", &self.fast_capacity_bytes)
            .field("resident_bytes", &self.fast_resident_bytes())
            .field("fast_hits", &self.metrics.fast_hits())
            .field("slow_hits", &self.metrics.slow_hits())
            .field("promotions", &self.metrics.promotions())
            .field("evictions", &self.metrics.evictions())
            .finish()
    }
}

// Propagate NotFound cleanly when the slow tier misses.
#[allow(dead_code)]
fn _not_found(key: &str) -> StoreError {
    StoreError::NotFound(key.to_owned())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::MemObjectStore;

    fn tiered(cap: u64) -> TieredStore<MemObjectStore, MemObjectStore> {
        TieredStore::new(Arc::new(MemObjectStore::new()), Arc::new(MemObjectStore::new()), cap)
    }

    #[test]
    fn read_promotes_to_fast_tier() {
        let t = tiered(1024);
        t.put("a", Bytes::from(vec![1u8; 100])).unwrap();
        assert!(!t.is_fast_resident("a"));
        t.get("a").unwrap();
        assert!(t.is_fast_resident("a"));
        let m = t.metrics();
        assert_eq!((m.fast_hits(), m.slow_hits(), m.promotions()), (0, 1, 1));
        t.get("a").unwrap();
        assert_eq!(t.metrics().fast_hits(), 1);
    }

    #[test]
    fn lru_eviction_respects_capacity() {
        let t = tiered(250);
        for k in ["a", "b", "c"] {
            t.put(k, Bytes::from(vec![0u8; 100])).unwrap();
        }
        t.get("a").unwrap();
        t.get("b").unwrap();
        assert_eq!(t.fast_resident_bytes(), 200);
        // Touch "a" so "b" is LRU, then promote "c".
        t.get("a").unwrap();
        t.get("c").unwrap();
        assert!(t.is_fast_resident("a"), "recently-used object must stay");
        assert!(!t.is_fast_resident("b"), "LRU object must be evicted");
        assert!(t.is_fast_resident("c"));
        assert_eq!(t.metrics().evictions(), 1);
        assert!(t.fast_resident_bytes() <= 250);
    }

    #[test]
    fn oversized_object_never_promoted() {
        let t = tiered(100);
        t.put("big", Bytes::from(vec![0u8; 500])).unwrap();
        t.get("big").unwrap();
        assert!(!t.is_fast_resident("big"));
        assert_eq!(t.metrics().promotions(), 0);
    }

    #[test]
    fn promote_prefix_sweeps_until_full() {
        let t = tiered(350);
        for i in 0..10 {
            t.put(&format!("ds/{i}"), Bytes::from(vec![0u8; 100])).unwrap();
        }
        t.put("other", Bytes::from(vec![0u8; 100])).unwrap();
        let promoted = t.promote_prefix("ds/").unwrap();
        assert_eq!(promoted, 3, "only 3 × 100 B fit in 350 B");
        assert!(!t.is_fast_resident("other"));
    }

    #[test]
    fn delete_removes_from_both_tiers() {
        let t = tiered(1024);
        t.put("a", Bytes::from(vec![0u8; 10])).unwrap();
        t.get("a").unwrap();
        assert!(t.delete("a").unwrap());
        assert!(!t.is_fast_resident("a"));
        assert!(t.get("a").is_err());
        assert_eq!(t.fast_resident_bytes(), 0);
    }

    #[test]
    fn miss_errors_propagate() {
        let t = tiered(10);
        assert!(matches!(t.get("nope"), Err(StoreError::NotFound(_))));
    }

    #[test]
    fn object_store_impl_serves_through_tiers() {
        let t = tiered(1 << 20);
        let store: &dyn ObjectStore = &t;
        store.put("k", Bytes::from(vec![5u8; 200])).unwrap();
        assert!(store.contains("k"));
        assert_eq!(store.size_of("k"), Some(200));
        // Range read from the slow tier does not promote.
        assert_eq!(store.get_range("k", 10, 5).unwrap().len(), 5);
        assert!(!t.is_fast_resident("k"));
        // Whole-object get promotes; subsequent range reads hit fast.
        store.get("k").unwrap();
        assert!(t.is_fast_resident("k"));
        assert_eq!(store.get_range("k", 0, 4).unwrap(), Bytes::from(vec![5u8; 4]));
        assert!(t.metrics().fast_hits() >= 1 && t.metrics().slow_hits() >= 1);
        assert_eq!(store.list_prefix("k"), vec!["k"]);
        assert_eq!(store.len(), 1);
        assert!(store.delete("k").unwrap());
        assert!(!store.contains("k"));
    }

    #[test]
    fn snapshot_exposes_tier_counters_and_resident_gauge() {
        let t = tiered(1024);
        t.put("a", Bytes::from(vec![0u8; 64])).unwrap();
        t.get("a").unwrap();
        t.get("a").unwrap();
        let store: &dyn ObjectStore = &t;
        let snap = store.obs_snapshot().expect("tiered store keeps a registry");
        assert_eq!(snap.counter("store.slow_hits"), 1);
        assert_eq!(snap.counter("store.fast_hits"), 1);
        assert_eq!(snap.counter("store.promotions"), 1);
        assert_eq!(snap.gauge("store.fast_resident_bytes"), 64);
    }
}
