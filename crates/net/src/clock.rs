//! Injectable time source for backoff and latency measurement.
//!
//! Retry backoff must be testable without wall-clock sleeps, so every
//! component that waits or timestamps takes an `Arc<dyn Clock>`.
//! Production code uses [`SystemClock`]; tests use [`MockClock`], where
//! `sleep_ns` simply advances the reading.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// A monotonic nanosecond clock that can also block.
pub trait Clock: Send + Sync {
    /// Nanoseconds since an arbitrary (per-clock) origin.
    fn now_ns(&self) -> u64;
    /// Wait for `ns` nanoseconds (or pretend to).
    fn sleep_ns(&self, ns: u64);
}

/// Real time: `Instant`-backed readings, `thread::sleep` waits.
#[derive(Debug)]
pub struct SystemClock {
    origin: Instant,
}

impl SystemClock {
    /// A clock whose origin is "now".
    pub fn new() -> Self {
        SystemClock { origin: Instant::now() }
    }
}

impl Default for SystemClock {
    fn default() -> Self {
        SystemClock::new()
    }
}

impl Clock for SystemClock {
    fn now_ns(&self) -> u64 {
        self.origin.elapsed().as_nanos() as u64
    }
    fn sleep_ns(&self, ns: u64) {
        std::thread::sleep(Duration::from_nanos(ns));
    }
}

/// Virtual time for tests: starts at zero, advances only on demand.
///
/// `sleep_ns` advances the clock instead of blocking, so retry/backoff
/// schedules can be asserted exactly and instantly.
#[derive(Debug, Default)]
pub struct MockClock {
    now: AtomicU64,
}

impl MockClock {
    /// A clock reading zero.
    pub fn new() -> Self {
        MockClock { now: AtomicU64::new(0) }
    }

    /// Move the clock forward by `ns`.
    pub fn advance(&self, ns: u64) {
        self.now.fetch_add(ns, Ordering::SeqCst);
    }
}

impl Clock for MockClock {
    fn now_ns(&self) -> u64 {
        self.now.load(Ordering::SeqCst)
    }
    fn sleep_ns(&self, ns: u64) {
        self.advance(ns);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mock_clock_advances_on_sleep() {
        let c = MockClock::new();
        assert_eq!(c.now_ns(), 0);
        c.sleep_ns(250);
        c.advance(50);
        assert_eq!(c.now_ns(), 300);
    }

    #[test]
    fn system_clock_is_monotonic() {
        let c = SystemClock::new();
        let a = c.now_ns();
        c.sleep_ns(1_000_000);
        let b = c.now_ns();
        assert!(b >= a + 1_000_000, "a={a} b={b}");
    }
}
