//! Injectable time source, re-exported from `diesel-util`.
//!
//! The [`Clock`] trait originally lived here; it moved down to
//! [`diesel_util::clock`] so crates below the RPC layer (notably
//! `diesel-chunk`, whose chunk IDs embed wall-clock timestamps) can take
//! an `Arc<dyn Clock>` without depending on networking. This module
//! keeps the `diesel_net::clock::*` paths working.

pub use diesel_util::clock::{Clock, MockClock, SystemClock};
