//! Bounded retry with exponential backoff.
//!
//! Retries only errors where a retry can help ([`crate::NetError::is_retryable`],
//! i.e. timeouts — the reply may simply have been lost). Backoff waits go
//! through the injected [`Clock`], so tests drive the schedule with a
//! [`MockClock`](crate::MockClock) and never sleep for real.

use std::sync::Arc;

use diesel_obs::trace;

use crate::clock::Clock;
use crate::stats::EndpointMetrics;
use crate::{Endpoint, Result, Service};

/// When and how much to back off.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts, including the first (1 = no retries).
    pub max_attempts: u32,
    /// Backoff before the first retry, in nanoseconds.
    pub base_backoff_ns: u64,
    /// Multiplier applied per subsequent retry.
    pub multiplier: u32,
    /// Backoff ceiling, in nanoseconds.
    pub max_backoff_ns: u64,
}

impl RetryPolicy {
    /// No retries: fail on the first error.
    pub fn none() -> Self {
        RetryPolicy { max_attempts: 1, base_backoff_ns: 0, multiplier: 1, max_backoff_ns: 0 }
    }

    /// The wait before retry number `retry` (0-based), capped.
    pub fn backoff_ns(&self, retry: u32) -> u64 {
        let factor = (self.multiplier as u64).saturating_pow(retry);
        self.base_backoff_ns.saturating_mul(factor).min(self.max_backoff_ns)
    }
}

impl Default for RetryPolicy {
    /// 3 attempts, 1 ms doubling backoff capped at 100 ms.
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_backoff_ns: 1_000_000,
            multiplier: 2,
            max_backoff_ns: 100_000_000,
        }
    }
}

/// Middleware that re-issues retryable failed calls per a [`RetryPolicy`].
pub struct Retry<S> {
    inner: S,
    policy: RetryPolicy,
    clock: Arc<dyn Clock>,
    metrics: Option<EndpointMetrics>,
}

impl<S> Retry<S> {
    /// Wrap `inner`; backoff waits use `clock`.
    pub fn new(inner: S, policy: RetryPolicy, clock: Arc<dyn Clock>) -> Self {
        Retry { inner, policy, clock, metrics: None }
    }

    /// Count retry attempts into `metrics` (the endpoint's registry
    /// cells).
    pub fn with_metrics(mut self, metrics: EndpointMetrics) -> Self {
        self.metrics = Some(metrics);
        self
    }
}

impl<Req: Clone, Resp, S: Service<Req, Resp>> Service<Req, Resp> for Retry<S> {
    fn call(&self, req: Req) -> Result<Resp> {
        let mut retry = 0;
        loop {
            // Each attempt is its own sibling span (`attempt=1..k`)
            // under the caller's context; backoff waits sit between
            // attempts, outside any attempt span.
            let out = {
                let _attempt = if trace::active() {
                    let n = (retry + 1).to_string();
                    trace::span("net.attempt", &[("attempt", n.as_str())])
                } else {
                    trace::SpanGuard::default()
                };
                self.inner.call(req.clone())
            };
            match out {
                Ok(resp) => return Ok(resp),
                Err(e) if e.is_retryable() && retry + 1 < self.policy.max_attempts => {
                    if let Some(metrics) = &self.metrics {
                        metrics.record_retry();
                    }
                    self.clock.sleep_ns(self.policy.backoff_ns(retry));
                    retry += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }

    fn endpoint(&self) -> Endpoint {
        self.inner.endpoint()
    }
}

impl<S> std::fmt::Debug for Retry<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Retry").field("policy", &self.policy).finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::MockClock;
    use crate::direct::DirectChannel;
    use crate::NetError;
    use std::sync::atomic::{AtomicU32, Ordering};

    fn flaky(fail_first: u32) -> (DirectChannel<impl Fn(u32) -> Result<u32>>, Arc<AtomicU32>) {
        let calls = Arc::new(AtomicU32::new(0));
        let c = calls.clone();
        let chan = DirectChannel::new(Endpoint::new("flaky", 0), move |x: u32| {
            if c.fetch_add(1, Ordering::SeqCst) < fail_first {
                Err(NetError::Timeout { endpoint: Endpoint::new("flaky", 0), after_ns: 10 })
            } else {
                Ok(x)
            }
        });
        (chan, calls)
    }

    #[test]
    fn backoff_schedule_is_exponential_and_capped() {
        let p = RetryPolicy {
            max_attempts: 10,
            base_backoff_ns: 1_000,
            multiplier: 2,
            max_backoff_ns: 10_000,
        };
        assert_eq!(p.backoff_ns(0), 1_000);
        assert_eq!(p.backoff_ns(1), 2_000);
        assert_eq!(p.backoff_ns(2), 4_000);
        assert_eq!(p.backoff_ns(3), 8_000);
        assert_eq!(p.backoff_ns(4), 10_000); // capped
        assert_eq!(p.backoff_ns(30), 10_000);
    }

    #[test]
    fn succeeds_after_transient_timeouts() {
        let (inner, calls) = flaky(2);
        let clock = Arc::new(MockClock::new());
        let reg = diesel_obs::Registry::new(clock.clone());
        let metrics = EndpointMetrics::new(&reg, &Endpoint::new("flaky", 0));
        let chan =
            Retry::new(inner, RetryPolicy::default(), clock.clone()).with_metrics(metrics.clone());
        assert_eq!(chan.call(5).unwrap(), 5);
        assert_eq!(calls.load(Ordering::SeqCst), 3);
        assert_eq!(metrics.retries(), 2);
        // Backoffs waited on the mock clock: 1 ms then 2 ms.
        assert_eq!(clock.now_ns(), 3_000_000);
    }

    #[test]
    fn gives_up_after_max_attempts() {
        let (inner, calls) = flaky(u32::MAX);
        let clock = Arc::new(MockClock::new());
        let chan = Retry::new(inner, RetryPolicy::default(), clock);
        let err = chan.call(1).unwrap_err();
        assert!(err.is_retryable(), "final error is the last timeout");
        assert_eq!(calls.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn non_retryable_errors_fail_immediately() {
        let calls = Arc::new(AtomicU32::new(0));
        let c = calls.clone();
        let inner = DirectChannel::new(Endpoint::new("gone", 3), move |_: ()| -> Result<()> {
            c.fetch_add(1, Ordering::SeqCst);
            Err(NetError::Disconnected { endpoint: Endpoint::new("gone", 3) })
        });
        let clock = Arc::new(MockClock::new());
        let chan = Retry::new(inner, RetryPolicy::default(), clock.clone());
        assert!(!chan.call(()).unwrap_err().is_retryable());
        assert_eq!(calls.load(Ordering::SeqCst), 1);
        assert_eq!(clock.now_ns(), 0, "no backoff happened");
    }

    #[test]
    fn attempts_trace_as_sibling_spans() {
        use diesel_obs::{trace, Registry, Tracer};
        let (inner, _) = flaky(2);
        let clock = Arc::new(MockClock::new());
        let registry = Arc::new(Registry::new(clock.clone()));
        let tracer = Tracer::enabled(&registry);
        let chan = Retry::new(inner, RetryPolicy::default(), clock);
        let _t = trace::install_tracer(&tracer);
        {
            let _root = trace::span("client.read", &[]);
            assert_eq!(chan.call(5).unwrap(), 5);
        }
        let spans = tracer.drain();
        let root = spans.iter().find(|s| s.name == "client.read").unwrap();
        let attempts: Vec<_> = spans.iter().filter(|s| s.name == "net.attempt").collect();
        assert_eq!(attempts.len(), 3, "two timeouts then a success");
        for (i, a) in attempts.iter().enumerate() {
            assert_eq!(a.parent, Some(root.id), "attempts are siblings under the root");
            assert_eq!(a.labels, vec![("attempt".to_owned(), (i + 1).to_string())]);
        }
    }

    #[test]
    fn policy_none_means_single_attempt() {
        let (inner, calls) = flaky(u32::MAX);
        let chan = Retry::new(inner, RetryPolicy::none(), Arc::new(MockClock::new()));
        assert!(chan.call(1).is_err());
        assert_eq!(calls.load(Ordering::SeqCst), 1);
    }
}
