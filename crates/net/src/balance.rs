//! Round-robin load balancing over N backend channels.
//!
//! `diesel-core`'s `ServerPool` is this: spread stateless calls across
//! equivalent servers, skipping ones that have disconnected. Each call
//! starts at the next backend in rotation; on
//! [`NetError::Disconnected`](crate::NetError) it fails over to the
//! following backend (a disconnected backend never saw the request, so
//! re-sending is safe), giving up only after all have refused.

use std::sync::atomic::{AtomicUsize, Ordering};

use crate::{Channel, Endpoint, NetError, Result, Service};

/// A channel that fans calls out round-robin over its backends.
pub struct BalancedChannel<Req, Resp> {
    backends: Vec<Channel<Req, Resp>>,
    next: AtomicUsize,
}

impl<Req, Resp> BalancedChannel<Req, Resp> {
    /// Balance over `backends` (must be non-empty).
    pub fn new(backends: Vec<Channel<Req, Resp>>) -> Self {
        assert!(!backends.is_empty(), "balanced channel needs at least one backend");
        BalancedChannel { backends, next: AtomicUsize::new(0) }
    }

    /// Number of backends.
    pub fn len(&self) -> usize {
        self.backends.len()
    }

    /// Always false: construction requires ≥ 1 backend.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The backend the next call will start at.
    pub fn next_index(&self) -> usize {
        self.next.load(Ordering::Relaxed) % self.backends.len()
    }

    /// Direct access to backend `i` (for targeted calls or inspection).
    pub fn backend(&self, i: usize) -> &Channel<Req, Resp> {
        &self.backends[i]
    }
}

impl<Req: Clone, Resp> Service<Req, Resp> for BalancedChannel<Req, Resp> {
    fn call(&self, req: Req) -> Result<Resp> {
        let n = self.backends.len();
        let start = self.next.fetch_add(1, Ordering::Relaxed);
        let mut last = NetError::Disconnected { endpoint: self.endpoint() };
        for i in 0..n {
            match self.backends[(start + i) % n].call(req.clone()) {
                Err(e @ NetError::Disconnected { .. }) => last = e,
                other => return other,
            }
        }
        Err(last)
    }

    fn endpoint(&self) -> Endpoint {
        Endpoint::new("balanced", self.backends.len())
    }
}

impl<Req, Resp> std::fmt::Debug for BalancedChannel<Req, Resp> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BalancedChannel").field("backends", &self.backends.len()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::direct::DirectChannel;
    use std::sync::Arc;

    fn backend(node: usize) -> Channel<u64, usize> {
        Arc::new(DirectChannel::new(Endpoint::new("server", node), move |_: u64| Ok(node)))
    }

    fn dead(node: usize) -> Channel<u64, usize> {
        Arc::new(DirectChannel::new(Endpoint::new("server", node), move |_: u64| {
            Err(NetError::Disconnected { endpoint: Endpoint::new("server", node) })
        }))
    }

    #[test]
    fn round_robin_cycles_evenly() {
        let chan = BalancedChannel::new(vec![backend(0), backend(1), backend(2)]);
        let mut hits = [0u32; 3];
        for _ in 0..6 {
            hits[chan.call(0).unwrap()] += 1;
        }
        assert_eq!(hits, [2, 2, 2]);
        assert_eq!(chan.len(), 3);
        assert!(!chan.is_empty());
    }

    #[test]
    fn disconnected_backend_is_skipped() {
        let chan = BalancedChannel::new(vec![backend(0), dead(1), backend(2)]);
        // Every call succeeds even when the rotation lands on the dead
        // backend; it fails over to the next live one.
        let served: Vec<usize> = (0..6).map(|_| chan.call(0).unwrap()).collect();
        assert!(served.iter().all(|&n| n == 0 || n == 2), "{served:?}");
        assert!(served.contains(&0) && served.contains(&2));
    }

    #[test]
    fn all_dead_reports_last_disconnect() {
        let chan = BalancedChannel::new(vec![dead(0), dead(1)]);
        let err = chan.call(0).unwrap_err();
        assert!(matches!(err, NetError::Disconnected { .. }));
    }

    #[test]
    fn non_disconnect_errors_do_not_fail_over() {
        let rejecting: Channel<u64, usize> =
            Arc::new(DirectChannel::new(Endpoint::new("server", 0), move |_: u64| {
                Err(NetError::Rejected {
                    endpoint: Endpoint::new("server", 0),
                    reason: "busy".into(),
                })
            }));
        let chan = BalancedChannel::new(vec![rejecting, backend(1)]);
        // First call starts at backend 0 and must surface its rejection
        // rather than silently retrying elsewhere.
        let err = chan.call(0).unwrap_err();
        assert!(matches!(err, NetError::Rejected { .. }));
        assert_eq!(chan.call(0).unwrap(), 1, "rotation still advances");
    }

    #[test]
    #[should_panic(expected = "at least one backend")]
    fn empty_backend_list_panics() {
        let _ = BalancedChannel::<u64, usize>::new(vec![]);
    }
}
