//! `diesel-net`: the one RPC layer for all inter-node traffic.
//!
//! DIESEL's components talk request/reply: clients call servers
//! (ingest/read/metadata), cache nodes call peer cache nodes (chunk
//! fetches), and simulations charge those same calls to modeled
//! resources. Before this crate each of those paths hand-rolled its own
//! crossbeam request/reply plumbing; now they all speak one typed
//! [`Service`] abstraction and compose the same middleware.
//!
//! # Pieces
//!
//! - [`Service<Req, Resp>`] — the calling convention: synchronous typed
//!   request/reply, transport errors surfaced as [`NetError`].
//! - [`Channel<Req, Resp>`] — an `Arc<dyn Service>`; what call sites hold.
//! - [`DirectChannel`] — in-process dispatch with no thread hop. Used by
//!   `DieselClient` when connected to a co-located server; preserves the
//!   zero-copy, zero-queue behavior of calling the server directly.
//! - [`ThreadServer`]/[`ThreadChannel`] — a serving thread fed by a
//!   crossbeam channel, one reply channel per call. Generalizes the old
//!   `PeerServer`/`PeerHandle` pair from `diesel-cache`.
//! - [`SimCostChannel`] — wraps any channel and charges each call's
//!   latency to a [`diesel_simnet::Resource`], advancing a simulated
//!   clock (queueing included).
//! - [`Retry`] — bounded retries with exponential backoff on retryable
//!   errors, driven by an injectable [`Clock`] so tests never sleep.
//! - [`FaultChannel`] — seeded fault injection (drop → timeout, delay,
//!   reject, permanent disconnect) for exercising failure paths
//!   deterministically.
//! - [`Instrumented`] + [`EndpointMetrics`] — per-endpoint request/
//!   error/retry/timeout counters and a latency histogram, living in a
//!   shared [`diesel_obs::Registry`] for one-snapshot observability.
//! - [`BalancedChannel`] — round-robin load balancing over N backends
//!   with failover past disconnected ones.

pub mod balance;
pub mod clock;
pub mod direct;
pub mod fault;
pub mod retry;
pub mod sim;
pub mod stats;
pub mod thread;

pub use balance::BalancedChannel;
pub use clock::{Clock, MockClock, SystemClock};
pub use direct::DirectChannel;
pub use fault::{FaultChannel, FaultPolicy};
pub use retry::{Retry, RetryPolicy};
pub use sim::SimCostChannel;
pub use stats::{EndpointMetrics, Instrumented};
pub use thread::{ThreadChannel, ThreadServer};

use std::sync::Arc;

/// Identity of the far side of a channel: a human-readable service name
/// plus the node id it lives on. Carried inside every [`NetError`] so
/// callers can report *which* endpoint failed (the old transport lost
/// this and reported `node: usize::MAX`).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Endpoint {
    /// Service name, e.g. `"peer"` or `"server"`.
    pub name: &'static str,
    /// Node the service runs on.
    pub node: usize,
}

impl Endpoint {
    /// An endpoint `name` on `node`.
    pub fn new(name: &'static str, node: usize) -> Self {
        Endpoint { name, node }
    }
}

impl std::fmt::Display for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}@{}", self.name, self.node)
    }
}

/// Transport-level failures. Application-level errors travel inside
/// `Resp` (typically a `Result`), not here.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// No reply within the channel's deadline.
    Timeout {
        /// Who we were calling.
        endpoint: Endpoint,
        /// The deadline that expired, in nanoseconds.
        after_ns: u64,
    },
    /// The far side is gone (serving thread exited, channel closed).
    Disconnected {
        /// Who we were calling.
        endpoint: Endpoint,
    },
    /// The request was rejected before reaching the service.
    Rejected {
        /// Who we were calling.
        endpoint: Endpoint,
        /// Why it was rejected.
        reason: String,
    },
}

impl NetError {
    /// The endpoint this error is about.
    pub fn endpoint(&self) -> &Endpoint {
        match self {
            NetError::Timeout { endpoint, .. }
            | NetError::Disconnected { endpoint }
            | NetError::Rejected { endpoint, .. } => endpoint,
        }
    }

    /// Whether a retry can plausibly succeed. Timeouts are retryable
    /// (the reply may have been lost); disconnects and rejections are
    /// not — the far side is gone or refusing.
    pub fn is_retryable(&self) -> bool {
        matches!(self, NetError::Timeout { .. })
    }
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Timeout { endpoint, after_ns } => {
                write!(f, "rpc to {endpoint} timed out after {after_ns}ns")
            }
            NetError::Disconnected { endpoint } => {
                write!(f, "rpc to {endpoint}: endpoint disconnected")
            }
            NetError::Rejected { endpoint, reason } => {
                write!(f, "rpc to {endpoint} rejected: {reason}")
            }
        }
    }
}

impl std::error::Error for NetError {}

/// Result of one RPC attempt.
pub type Result<T> = std::result::Result<T, NetError>;

/// A synchronous typed request/reply service.
///
/// `call` either delivers the request and returns the service's reply,
/// or fails with a transport-level [`NetError`]. Implementations must be
/// safe to call from many threads at once.
pub trait Service<Req, Resp>: Send + Sync {
    /// Issue one request and wait for its reply.
    fn call(&self, req: Req) -> Result<Resp>;

    /// The endpoint this service represents (for errors and stats).
    fn endpoint(&self) -> Endpoint;
}

/// What call sites hold: a shareable, type-erased service.
pub type Channel<Req, Resp> = Arc<dyn Service<Req, Resp>>;

impl<Req, Resp, S: Service<Req, Resp> + ?Sized> Service<Req, Resp> for Arc<S> {
    fn call(&self, req: Req) -> Result<Resp> {
        (**self).call(req)
    }
    fn endpoint(&self) -> Endpoint {
        (**self).endpoint()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoint_display_and_error_accessors() {
        let ep = Endpoint::new("peer", 3);
        assert_eq!(format!("{ep}"), "peer@3");
        let t = NetError::Timeout { endpoint: ep.clone(), after_ns: 5 };
        let d = NetError::Disconnected { endpoint: ep.clone() };
        let r = NetError::Rejected { endpoint: ep.clone(), reason: "full".into() };
        assert_eq!(t.endpoint(), &ep);
        assert_eq!(d.endpoint(), &ep);
        assert_eq!(r.endpoint(), &ep);
        assert!(t.is_retryable());
        assert!(!d.is_retryable());
        assert!(!r.is_retryable());
        assert!(format!("{t}").contains("timed out"));
        assert!(format!("{d}").contains("disconnected"));
        assert!(format!("{r}").contains("full"));
    }

    #[test]
    fn channels_are_object_safe_and_shareable() {
        let chan: Channel<u32, u32> =
            Arc::new(DirectChannel::new(Endpoint::new("echo", 0), |x: u32| Ok(x + 1)));
        let c2 = chan.clone();
        assert_eq!(chan.call(1).unwrap(), 2);
        assert_eq!(c2.call(41).unwrap(), 42);
        assert_eq!(chan.endpoint(), Endpoint::new("echo", 0));
    }
}
