//! Seeded fault injection for channels.
//!
//! Wraps any service and misbehaves per a [`FaultPolicy`]: drop the
//! request (caller sees a timeout after the configured deadline), delay
//! it, reject it outright, or disconnect permanently after N calls.
//! Faults are drawn from a private SplitMix64 stream, so a given seed
//! produces the same fault sequence on every run and platform — the
//! fault stream deliberately does not depend on the `rand` crate.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use diesel_util::Mutex;

use crate::clock::Clock;
use crate::{Endpoint, NetError, Result, Service};

/// What to inject and how often. Probabilities are checked in order:
/// disconnect, reject, drop, delay; at most one fault fires per call.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPolicy {
    /// RNG seed; same seed ⇒ same fault sequence.
    pub seed: u64,
    /// Probability a call is rejected immediately.
    pub reject_prob: f64,
    /// Probability a call is dropped: the caller burns `drop_timeout_ns`
    /// on the clock and gets [`NetError::Timeout`].
    pub drop_prob: f64,
    /// Clock time charged to a dropped call before it times out.
    pub drop_timeout_ns: u64,
    /// Probability a call is delayed by `delay_ns` before dispatch.
    pub delay_prob: f64,
    /// Injected delay, in nanoseconds.
    pub delay_ns: u64,
    /// After this many calls, every call fails [`NetError::Disconnected`].
    pub disconnect_after: Option<u64>,
}

impl Default for FaultPolicy {
    /// No faults (but still deterministic with seed 0).
    fn default() -> Self {
        FaultPolicy {
            seed: 0,
            reject_prob: 0.0,
            drop_prob: 0.0,
            drop_timeout_ns: 50_000_000,
            delay_prob: 0.0,
            delay_ns: 0,
            disconnect_after: None,
        }
    }
}

impl FaultPolicy {
    /// A policy that only drops requests with probability `p`.
    pub fn drops(seed: u64, p: f64, timeout_ns: u64) -> Self {
        FaultPolicy { seed, drop_prob: p, drop_timeout_ns: timeout_ns, ..Default::default() }
    }

    /// A policy that disconnects permanently after `n` calls.
    pub fn disconnects_after(n: u64) -> Self {
        FaultPolicy { disconnect_after: Some(n), ..Default::default() }
    }
}

// SplitMix64: tiny, seedable, and identical everywhere. Kept private to
// this crate so fault sequences can't shift under us if the workspace's
// `rand` changes.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Middleware injecting faults per a [`FaultPolicy`].
pub struct FaultChannel<S> {
    inner: S,
    policy: FaultPolicy,
    rng: Mutex<SplitMix64>,
    calls: AtomicU64,
    clock: Arc<dyn Clock>,
}

impl<S> FaultChannel<S> {
    /// Wrap `inner`; injected waits (drops, delays) use `clock`.
    pub fn new(inner: S, policy: FaultPolicy, clock: Arc<dyn Clock>) -> Self {
        let rng = Mutex::named("net.fault_rng", SplitMix64(policy.seed));
        FaultChannel { inner, policy, rng, calls: AtomicU64::new(0), clock }
    }

    /// Calls seen so far (faulted or not).
    pub fn calls(&self) -> u64 {
        self.calls.load(Ordering::Relaxed)
    }
}

impl<Req, Resp, S: Service<Req, Resp>> Service<Req, Resp> for FaultChannel<S> {
    fn call(&self, req: Req) -> Result<Resp> {
        let endpoint = self.inner.endpoint();
        let n = self.calls.fetch_add(1, Ordering::SeqCst);
        if let Some(limit) = self.policy.disconnect_after {
            if n >= limit {
                return Err(NetError::Disconnected { endpoint });
            }
        }
        // Draw all three rolls every call so the stream position depends
        // only on the call count, not on which faults fired.
        let (reject, dropped, delayed) = {
            let mut rng = self.rng.lock();
            (rng.next_f64(), rng.next_f64(), rng.next_f64())
        };
        if reject < self.policy.reject_prob {
            return Err(NetError::Rejected { endpoint, reason: "injected fault".into() });
        }
        if dropped < self.policy.drop_prob {
            self.clock.sleep_ns(self.policy.drop_timeout_ns);
            return Err(NetError::Timeout { endpoint, after_ns: self.policy.drop_timeout_ns });
        }
        if delayed < self.policy.delay_prob {
            self.clock.sleep_ns(self.policy.delay_ns);
        }
        self.inner.call(req)
    }

    fn endpoint(&self) -> Endpoint {
        self.inner.endpoint()
    }
}

impl<S> std::fmt::Debug for FaultChannel<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultChannel").field("policy", &self.policy).finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::MockClock;
    use crate::direct::DirectChannel;

    fn echo() -> DirectChannel<impl Fn(u64) -> Result<u64>> {
        DirectChannel::new(Endpoint::new("svc", 0), |x: u64| Ok(x))
    }

    fn run_pattern(policy: FaultPolicy, n: u64) -> Vec<bool> {
        let chan = FaultChannel::new(echo(), policy, Arc::new(MockClock::new()));
        (0..n).map(|i| chan.call(i).is_err()).collect()
    }

    #[test]
    fn same_seed_same_fault_sequence() {
        let p = FaultPolicy::drops(42, 0.5, 1_000);
        assert_eq!(run_pattern(p.clone(), 300), run_pattern(p, 300));
    }

    #[test]
    fn different_seeds_differ() {
        let a = run_pattern(FaultPolicy::drops(1, 0.5, 1_000), 300);
        let b = run_pattern(FaultPolicy::drops(2, 0.5, 1_000), 300);
        assert_ne!(a, b);
    }

    #[test]
    fn drop_rate_is_roughly_honored_and_charges_the_clock() {
        let clock = Arc::new(MockClock::new());
        let chan = FaultChannel::new(echo(), FaultPolicy::drops(7, 0.3, 1_000), clock.clone());
        let mut drops = 0u64;
        for i in 0..1000 {
            match chan.call(i) {
                Err(NetError::Timeout { after_ns, .. }) => {
                    assert_eq!(after_ns, 1_000);
                    drops += 1;
                }
                Err(e) => panic!("unexpected error {e:?}"),
                Ok(v) => assert_eq!(v, i),
            }
        }
        assert!((200..400).contains(&drops), "drop rate off: {drops}/1000");
        assert_eq!(clock.now_ns(), drops * 1_000, "each drop charged its timeout");
        assert_eq!(chan.calls(), 1000);
    }

    #[test]
    fn disconnect_after_is_permanent() {
        let chan = FaultChannel::new(
            echo(),
            FaultPolicy::disconnects_after(3),
            Arc::new(MockClock::new()),
        );
        for i in 0..3 {
            assert_eq!(chan.call(i).unwrap(), i);
        }
        for i in 0..5 {
            let err = chan.call(i).unwrap_err();
            assert_eq!(err, NetError::Disconnected { endpoint: Endpoint::new("svc", 0) });
        }
    }

    #[test]
    fn rejects_and_delays() {
        let clock = Arc::new(MockClock::new());
        let policy = FaultPolicy { seed: 9, reject_prob: 1.0, ..Default::default() };
        let chan = FaultChannel::new(echo(), policy, clock.clone());
        assert!(matches!(chan.call(1).unwrap_err(), NetError::Rejected { .. }));

        let policy = FaultPolicy { seed: 9, delay_prob: 1.0, delay_ns: 777, ..Default::default() };
        let chan = FaultChannel::new(echo(), policy, clock.clone());
        assert_eq!(chan.call(5).unwrap(), 5);
        assert_eq!(clock.now_ns(), 777);
    }
}
