//! Per-endpoint RPC metrics, backed by the `diesel-obs` registry.
//!
//! Every instrumented channel feeds an [`EndpointMetrics`]: a bundle of
//! handles into a shared [`Registry`] — monotonic request/error/retry/
//! timeout counters plus a latency histogram (~4 % log buckets), all
//! labelled `{endpoint=name@node}`. Snapshot the registry to see every
//! channel of a process at once; merge snapshots to aggregate across
//! processes.

use std::sync::Arc;

use diesel_obs::trace;
use diesel_obs::{Counter, HistogramHandle, Registry, Summary};

use crate::clock::Clock;
use crate::{Endpoint, NetError, Result, Service};

/// Metric handles for one endpoint. Cheap to clone; clones share the
/// registry cells.
#[derive(Clone, Debug)]
pub struct EndpointMetrics {
    requests: Counter,
    errors: Counter,
    retries: Counter,
    timeouts: Counter,
    latency: HistogramHandle,
}

impl EndpointMetrics {
    /// The handles for `endpoint` inside `registry`, created on first
    /// use. Requesting the same endpoint twice yields the same cells.
    pub fn new(registry: &Registry, endpoint: &Endpoint) -> Self {
        let ep = endpoint.to_string();
        let labels = [("endpoint", ep.as_str())];
        EndpointMetrics {
            requests: registry.counter("net.requests", &labels),
            errors: registry.counter("net.errors", &labels),
            retries: registry.counter("net.retries", &labels),
            timeouts: registry.counter("net.timeouts", &labels),
            latency: registry.histogram("net.latency", &labels),
        }
    }

    /// The full metric id `metric{endpoint=…}` — how these cells appear
    /// in a [`diesel_obs::RegistrySnapshot`].
    pub fn id(metric: &str, endpoint: &Endpoint) -> String {
        format!("{metric}{{endpoint={endpoint}}}")
    }

    /// Record one completed call (success or failure) and its latency.
    pub fn record_call(&self, latency_ns: u64, outcome: &Result<()>) {
        self.requests.inc();
        if let Err(e) = outcome {
            self.errors.inc();
            if matches!(e, NetError::Timeout { .. }) {
                self.timeouts.inc();
            }
        }
        self.latency.record_ns(latency_ns);
    }

    /// Record one retry attempt (called by the retry middleware).
    pub fn record_retry(&self) {
        self.retries.inc();
    }

    /// Completed calls (including failed ones).
    pub fn requests(&self) -> u64 {
        self.requests.get()
    }

    /// Calls that returned a transport error.
    pub fn errors(&self) -> u64 {
        self.errors.get()
    }

    /// Retry attempts made on top of first attempts.
    pub fn retries(&self) -> u64 {
        self.retries.get()
    }

    /// Errors that were specifically timeouts.
    pub fn timeouts(&self) -> u64 {
        self.timeouts.get()
    }

    /// Latency distribution of completed calls so far.
    pub fn latency(&self) -> Summary {
        self.latency.summary()
    }
}

/// Middleware that counts and times every call through `inner`.
pub struct Instrumented<S> {
    inner: S,
    metrics: EndpointMetrics,
    clock: Arc<dyn Clock>,
}

impl<S> Instrumented<S> {
    /// Wrap `inner`, feeding `metrics` using `clock` for latency.
    pub fn new(inner: S, metrics: EndpointMetrics, clock: Arc<dyn Clock>) -> Self {
        Instrumented { inner, metrics, clock }
    }

    /// The metric handles this wrapper feeds.
    pub fn metrics(&self) -> &EndpointMetrics {
        &self.metrics
    }
}

impl<Req, Resp, S: Service<Req, Resp>> Service<Req, Resp> for Instrumented<S> {
    fn call(&self, req: Req) -> Result<Resp> {
        // Endpoint label built only when a tracer is ambient.
        let _span = if trace::active() {
            let ep = self.inner.endpoint().to_string();
            trace::span("net.call", &[("endpoint", ep.as_str())])
        } else {
            trace::SpanGuard::default()
        };
        let t0 = self.clock.now_ns();
        let out = self.inner.call(req);
        let latency = self.clock.now_ns().saturating_sub(t0);
        let probe = match &out {
            Ok(_) => Ok(()),
            Err(e) => Err(e.clone()),
        };
        self.metrics.record_call(latency, &probe);
        out
    }

    fn endpoint(&self) -> Endpoint {
        self.inner.endpoint()
    }
}

impl<S> std::fmt::Debug for Instrumented<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Instrumented").field("metrics", &self.metrics).finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::MockClock;
    use crate::direct::DirectChannel;

    fn registry() -> Registry {
        Registry::new(Arc::new(MockClock::new()))
    }

    #[test]
    fn counts_successes_and_errors_separately() {
        let ep = Endpoint::new("svc", 0);
        let inner = DirectChannel::new(ep.clone(), move |x: u64| {
            if x.is_multiple_of(2) {
                Ok(x)
            } else {
                Err(NetError::Timeout { endpoint: Endpoint::new("svc", 0), after_ns: 1 })
            }
        });
        let reg = registry();
        let clock = Arc::new(MockClock::new());
        let chan = Instrumented::new(inner, EndpointMetrics::new(&reg, &ep), clock);
        for x in 0..10u64 {
            let _ = chan.call(x);
        }
        let snap = reg.snapshot();
        assert_eq!(snap.counter("net.requests{endpoint=svc@0}"), 10);
        assert_eq!(snap.counter("net.errors{endpoint=svc@0}"), 5);
        assert_eq!(snap.counter("net.timeouts{endpoint=svc@0}"), 5);
        assert_eq!(snap.counter("net.retries{endpoint=svc@0}"), 0);
        assert_eq!(snap.histogram_summary("net.latency{endpoint=svc@0}").count, 10);
    }

    #[test]
    fn latency_is_measured_with_the_injected_clock() {
        let ep = Endpoint::new("svc", 1);
        let clock = Arc::new(MockClock::new());
        let c2 = clock.clone();
        let inner = DirectChannel::new(ep.clone(), move |_: ()| {
            c2.advance(2_000_000); // handler "takes" 2 ms
            Ok(())
        });
        let reg = registry();
        let chan = Instrumented::new(inner, EndpointMetrics::new(&reg, &ep), clock);
        chan.call(()).unwrap();
        let s = chan.metrics().latency();
        assert_eq!(s.max_ns, 2_000_000);
    }

    #[test]
    fn same_endpoint_shares_registry_cells() {
        let reg = registry();
        let a1 = EndpointMetrics::new(&reg, &Endpoint::new("peer", 0));
        let a2 = EndpointMetrics::new(&reg, &Endpoint::new("peer", 0));
        let b = EndpointMetrics::new(&reg, &Endpoint::new("peer", 1));
        a1.record_call(10, &Ok(()));
        a2.record_call(10, &Ok(()));
        b.record_retry();
        assert_eq!(a1.requests(), 2, "clones share one cell");
        let snap = reg.snapshot();
        assert_eq!(
            snap.counter(&EndpointMetrics::id("net.requests", &Endpoint::new("peer", 0))),
            2
        );
        assert_eq!(snap.counter("net.retries{endpoint=peer@1}"), 1);
        assert_eq!(snap.sum_counter("net.requests"), 2);
    }
}
