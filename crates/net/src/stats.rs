//! Per-endpoint RPC statistics.
//!
//! Every instrumented channel feeds an [`EndpointStats`]: monotonic
//! request/error/retry/timeout counters plus a latency histogram
//! ([`diesel_simnet::Histogram`], ~4 % log buckets). A [`NetStats`]
//! registry hands out one `EndpointStats` per [`Endpoint`] so a process
//! can snapshot all its channels at once.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use diesel_simnet::{Histogram, Summary};
use diesel_util::Mutex;

use crate::clock::Clock;
use crate::{Endpoint, NetError, Result, Service};

/// Live counters for one endpoint. All methods are thread-safe.
#[derive(Debug, Default)]
pub struct EndpointStats {
    requests: AtomicU64,
    errors: AtomicU64,
    retries: AtomicU64,
    timeouts: AtomicU64,
    latency: Mutex<Histogram>,
}

impl EndpointStats {
    /// Fresh, all-zero stats.
    pub fn new() -> Self {
        EndpointStats::default()
    }

    /// Record one completed call (success or failure) and its latency.
    pub fn record_call(&self, latency_ns: u64, outcome: &Result<()>) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        if let Err(e) = outcome {
            self.errors.fetch_add(1, Ordering::Relaxed);
            if matches!(e, NetError::Timeout { .. }) {
                self.timeouts.fetch_add(1, Ordering::Relaxed);
            }
        }
        self.latency.lock().record_ns(latency_ns);
    }

    /// Record one retry attempt (called by the retry middleware).
    pub fn record_retry(&self) {
        self.retries.fetch_add(1, Ordering::Relaxed);
    }

    /// Completed calls (including failed ones).
    pub fn requests(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// Calls that returned a transport error.
    pub fn errors(&self) -> u64 {
        self.errors.load(Ordering::Relaxed)
    }

    /// Retry attempts made on top of first attempts.
    pub fn retries(&self) -> u64 {
        self.retries.load(Ordering::Relaxed)
    }

    /// Errors that were specifically timeouts.
    pub fn timeouts(&self) -> u64 {
        self.timeouts.load(Ordering::Relaxed)
    }

    /// Consistent point-in-time copy of all counters and the latency
    /// summary.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            requests: self.requests(),
            errors: self.errors(),
            retries: self.retries(),
            timeouts: self.timeouts(),
            latency: self.latency.lock().summary(),
        }
    }
}

/// Frozen view of an [`EndpointStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Completed calls.
    pub requests: u64,
    /// Transport errors among them.
    pub errors: u64,
    /// Retry attempts.
    pub retries: u64,
    /// Timeout errors among the errors.
    pub timeouts: u64,
    /// Latency distribution of completed calls.
    pub latency: Summary,
}

impl std::fmt::Display for StatsSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "req={} err={} retry={} timeout={} lat[{}]",
            self.requests, self.errors, self.retries, self.timeouts, self.latency
        )
    }
}

/// Registry mapping endpoints to their stats; shared across channels.
#[derive(Debug, Default)]
pub struct NetStats {
    endpoints: Mutex<BTreeMap<String, Arc<EndpointStats>>>,
}

impl NetStats {
    /// An empty registry.
    pub fn new() -> Self {
        NetStats::default()
    }

    /// The stats cell for `endpoint`, created on first use.
    pub fn endpoint(&self, endpoint: &Endpoint) -> Arc<EndpointStats> {
        self.endpoints.lock().entry(endpoint.to_string()).or_default().clone()
    }

    /// Snapshot every registered endpoint, keyed by `name@node`.
    pub fn snapshot(&self) -> BTreeMap<String, StatsSnapshot> {
        self.endpoints.lock().iter().map(|(k, v)| (k.clone(), v.snapshot())).collect()
    }
}

/// Middleware that counts and times every call through `inner`.
pub struct Instrumented<S> {
    inner: S,
    stats: Arc<EndpointStats>,
    clock: Arc<dyn Clock>,
}

impl<S> Instrumented<S> {
    /// Wrap `inner`, feeding `stats` using `clock` for latency.
    pub fn new(inner: S, stats: Arc<EndpointStats>, clock: Arc<dyn Clock>) -> Self {
        Instrumented { inner, stats, clock }
    }

    /// The stats cell this wrapper feeds.
    pub fn stats(&self) -> &Arc<EndpointStats> {
        &self.stats
    }
}

impl<Req, Resp, S: Service<Req, Resp>> Service<Req, Resp> for Instrumented<S> {
    fn call(&self, req: Req) -> Result<Resp> {
        let t0 = self.clock.now_ns();
        let out = self.inner.call(req);
        let latency = self.clock.now_ns().saturating_sub(t0);
        let probe = match &out {
            Ok(_) => Ok(()),
            Err(e) => Err(e.clone()),
        };
        self.stats.record_call(latency, &probe);
        out
    }

    fn endpoint(&self) -> Endpoint {
        self.inner.endpoint()
    }
}

impl<S> std::fmt::Debug for Instrumented<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Instrumented").field("stats", &self.stats).finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::MockClock;
    use crate::direct::DirectChannel;

    #[test]
    fn counts_successes_and_errors_separately() {
        let ep = Endpoint::new("svc", 0);
        let inner = DirectChannel::new(ep.clone(), move |x: u64| {
            if x.is_multiple_of(2) {
                Ok(x)
            } else {
                Err(NetError::Timeout { endpoint: Endpoint::new("svc", 0), after_ns: 1 })
            }
        });
        let clock = Arc::new(MockClock::new());
        let stats = Arc::new(EndpointStats::new());
        let chan = Instrumented::new(inner, stats.clone(), clock);
        for x in 0..10u64 {
            let _ = chan.call(x);
        }
        let s = stats.snapshot();
        assert_eq!(s.requests, 10);
        assert_eq!(s.errors, 5);
        assert_eq!(s.timeouts, 5);
        assert_eq!(s.retries, 0);
        assert_eq!(s.latency.count, 10);
    }

    #[test]
    fn latency_is_measured_with_the_injected_clock() {
        let ep = Endpoint::new("svc", 1);
        let clock = Arc::new(MockClock::new());
        let c2 = clock.clone();
        let inner = DirectChannel::new(ep, move |_: ()| {
            c2.advance(2_000_000); // handler "takes" 2 ms
            Ok(())
        });
        let stats = Arc::new(EndpointStats::new());
        let chan = Instrumented::new(inner, stats.clone(), clock);
        chan.call(()).unwrap();
        let s = stats.snapshot();
        assert_eq!(s.latency.max.as_millis(), 2);
    }

    #[test]
    fn registry_reuses_cells_and_snapshots_all() {
        let reg = NetStats::new();
        let a1 = reg.endpoint(&Endpoint::new("peer", 0));
        let a2 = reg.endpoint(&Endpoint::new("peer", 0));
        let b = reg.endpoint(&Endpoint::new("peer", 1));
        assert!(Arc::ptr_eq(&a1, &a2));
        assert!(!Arc::ptr_eq(&a1, &b));
        a1.record_call(10, &Ok(()));
        b.record_retry();
        let snap = reg.snapshot();
        assert_eq!(snap["peer@0"].requests, 1);
        assert_eq!(snap["peer@1"].retries, 1);
    }
}
