//! Cost-modeled channel for simulations.
//!
//! Charges every call's wire time to a [`diesel_simnet::Resource`]
//! (e.g. a NIC or an MDS) before dispatching to the real service. The
//! channel keeps its own simulated clock that advances to each grant's
//! end, so queueing at the resource shows up as latency, and a latency
//! histogram records what the paper's figures plot.

use std::sync::Arc;

use diesel_simnet::{Histogram, Resource, SimTime, Summary};
use diesel_util::Mutex;

use crate::{Endpoint, Result, Service};

/// Middleware that bills calls to a simulated resource.
pub struct SimCostChannel<S, C> {
    inner: S,
    resource: Arc<Resource>,
    cost: C,
    now: Mutex<SimTime>,
    latency: Mutex<Histogram>,
}

impl<S, C> SimCostChannel<S, C> {
    /// Wrap `inner`; each request is charged `cost(&req)` service time
    /// on `resource`, starting from this channel's current sim time.
    pub fn new(inner: S, resource: Arc<Resource>, cost: C) -> Self {
        SimCostChannel {
            inner,
            resource,
            cost,
            now: Mutex::named("net.sim_now", SimTime::ZERO),
            latency: Mutex::named("net.sim_latency", Histogram::new()),
        }
    }

    /// This channel's simulated clock (advances as calls are billed).
    pub fn sim_now(&self) -> SimTime {
        *self.now.lock()
    }

    /// Latency distribution of billed calls (queueing + service).
    pub fn latency_summary(&self) -> Summary {
        self.latency.lock().summary()
    }

    /// The resource calls are billed to.
    pub fn resource(&self) -> &Arc<Resource> {
        &self.resource
    }
}

impl<Req, Resp, S, C> Service<Req, Resp> for SimCostChannel<S, C>
where
    S: Service<Req, Resp>,
    C: Fn(&Req) -> SimTime + Send + Sync,
{
    fn call(&self, req: Req) -> Result<Resp> {
        let service = (self.cost)(&req);
        let issued = *self.now.lock();
        let grant = self.resource.acquire(issued, service);
        {
            let mut now = self.now.lock();
            *now = now.max_of(grant.end);
        }
        self.latency.lock().record(grant.end - issued);
        self.inner.call(req)
    }

    fn endpoint(&self) -> Endpoint {
        self.inner.endpoint()
    }
}

impl<S, C> std::fmt::Debug for SimCostChannel<S, C> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimCostChannel")
            .field("resource", &self.resource.name())
            .field("now", &self.sim_now())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::direct::DirectChannel;

    fn echo() -> DirectChannel<impl Fn(u64) -> Result<u64>> {
        DirectChannel::new(Endpoint::new("mds", 0), |x: u64| Ok(x))
    }

    #[test]
    fn serial_calls_accumulate_service_time() {
        let res = Arc::new(Resource::new("mds", 1));
        let chan = SimCostChannel::new(echo(), res, |_: &u64| SimTime::from_millis(2));
        for i in 0..5 {
            assert_eq!(chan.call(i).unwrap(), i);
        }
        assert_eq!(chan.sim_now(), SimTime::from_millis(10));
        let s = chan.latency_summary();
        assert_eq!(s.count, 5);
        assert_eq!(s.max, SimTime::from_millis(2), "no queueing on a private resource");
    }

    #[test]
    fn contention_on_a_shared_resource_shows_up_as_queueing() {
        // Two channels share one single-server resource; their grants
        // interleave, so later calls queue behind the other channel's.
        let res = Arc::new(Resource::new("nic", 1));
        let a = SimCostChannel::new(echo(), res.clone(), |_: &u64| SimTime::from_millis(1));
        let b = SimCostChannel::new(echo(), res.clone(), |_: &u64| SimTime::from_millis(1));
        a.call(0).unwrap(); // nic busy [0,1ms)
        b.call(0).unwrap(); // queues: [1,2ms)
        assert_eq!(b.sim_now(), SimTime::from_millis(2));
        assert_eq!(b.latency_summary().max, SimTime::from_millis(2));
        assert_eq!(res.served(), 2);
    }

    #[test]
    fn cost_can_depend_on_the_request() {
        let res = Arc::new(Resource::new("nic", 1));
        let chan = SimCostChannel::new(echo(), res, |bytes: &u64| SimTime::for_bytes(*bytes, 1e9));
        chan.call(1_000_000_000).unwrap(); // 1 GB at 1 GB/s = 1 s
        assert_eq!(chan.sim_now(), SimTime::from_secs(1));
    }
}
