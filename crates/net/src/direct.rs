//! In-process dispatch: the zero-overhead channel.
//!
//! A [`DirectChannel`] calls its handler on the caller's thread with no
//! queueing, no copy, and no serialization — exactly the behavior of
//! holding an `Arc<Server>` and calling methods on it, but expressed as
//! a [`Service`] so the same call sites can later be
//! pointed at a threaded, simulated, or fault-injected transport.

use crate::{Endpoint, Result, Service};

/// A service backed by a plain closure (or any `Fn`).
pub struct DirectChannel<F> {
    endpoint: Endpoint,
    handler: F,
}

impl<F> DirectChannel<F> {
    /// Wrap `handler` as the service behind `endpoint`.
    pub fn new(endpoint: Endpoint, handler: F) -> Self {
        DirectChannel { endpoint, handler }
    }
}

impl<Req, Resp, F> Service<Req, Resp> for DirectChannel<F>
where
    F: Fn(Req) -> Result<Resp> + Send + Sync,
{
    fn call(&self, req: Req) -> Result<Resp> {
        (self.handler)(req)
    }
    fn endpoint(&self) -> Endpoint {
        self.endpoint.clone()
    }
}

impl<F> std::fmt::Debug for DirectChannel<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DirectChannel").field("endpoint", &self.endpoint).finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NetError;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    #[test]
    fn calls_run_on_the_calling_thread() {
        let tid = std::thread::current().id();
        let chan = DirectChannel::new(Endpoint::new("local", 0), move |x: u64| {
            assert_eq!(std::thread::current().id(), tid);
            Ok(x * 2)
        });
        assert_eq!(chan.call(21).unwrap(), 42);
    }

    #[test]
    fn handler_errors_pass_through() {
        let ep = Endpoint::new("local", 7);
        let chan = DirectChannel::new(ep.clone(), move |_: ()| -> Result<()> {
            Err(NetError::Rejected { endpoint: Endpoint::new("local", 7), reason: "no".into() })
        });
        let err = chan.call(()).unwrap_err();
        assert_eq!(err.endpoint(), &ep);
    }

    #[test]
    fn shared_state_is_visible_across_clones() {
        let hits = Arc::new(AtomicU64::new(0));
        let h = hits.clone();
        let chan = Arc::new(DirectChannel::new(Endpoint::new("ctr", 0), move |_: ()| {
            Ok(h.fetch_add(1, Ordering::SeqCst))
        }));
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let c = chan.clone();
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        c.call(()).unwrap();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(hits.load(Ordering::SeqCst), 400);
    }
}
