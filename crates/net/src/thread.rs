//! Serving-thread transport: one thread owns the state, callers send
//! requests over an mpsc channel and block on a per-call reply channel.
//!
//! This generalizes the `PeerServer`/`PeerHandle` pair that used to live
//! in `diesel-cache`: the request enum, reply-sender plumbing, shutdown
//! message, and deadline handling are all here, so transports only
//! provide a handler closure.
//!
//! Calls carry the caller's [`TraceContext`] across the thread hop: the
//! serving thread installs it around the handler, so spans opened while
//! handling parent the caller's span even though they run on another
//! thread.

use std::sync::mpsc::{channel, sync_channel, RecvTimeoutError, Sender, SyncSender};
use std::thread::JoinHandle;
use std::time::Duration;

use diesel_obs::trace;
use diesel_obs::TraceContext;

use crate::{Endpoint, NetError, Result, Service};

enum Msg<Req, Resp> {
    Call { req: Req, reply: SyncSender<Resp>, ctx: Option<TraceContext> },
    Shutdown,
}

/// A service running on its own named thread.
///
/// Dropping (or [`kill`](ThreadServer::kill)ing) the server sends a
/// shutdown message and joins the thread; outstanding callers observe
/// [`NetError::Disconnected`].
pub struct ThreadServer<Req, Resp> {
    endpoint: Endpoint,
    tx: Sender<Msg<Req, Resp>>,
    thread: Option<JoinHandle<()>>,
}

impl<Req: Send + 'static, Resp: Send + 'static> ThreadServer<Req, Resp> {
    /// Spawn a serving thread named `diesel-net-<endpoint>` running
    /// `handler` over incoming requests until shutdown.
    ///
    /// The handler owns whatever state it closes over; requests are
    /// processed strictly in arrival order.
    pub fn spawn<H>(endpoint: Endpoint, mut handler: H) -> Self
    where
        H: FnMut(Req) -> Resp + Send + 'static,
    {
        let (tx, rx) = channel::<Msg<Req, Resp>>();
        let thread = std::thread::Builder::new()
            .name(format!("diesel-net-{endpoint}"))
            .spawn(move || {
                while let Ok(msg) = rx.recv() {
                    match msg {
                        Msg::Call { req, reply, ctx } => {
                            let _g = trace::install_context(ctx);
                            // A dead caller (timed out, gave up) is fine.
                            let _ = reply.send(handler(req));
                        }
                        Msg::Shutdown => break,
                    }
                }
            })
            // Spawn failure (OS thread exhaustion) leaves the channel
            // disconnected, so callers observe NetError::Disconnected
            // instead of the transport panicking.
            .ok();
        ThreadServer { endpoint, tx, thread }
    }

    /// A new caller-side channel to this server, with no deadline.
    pub fn channel(&self) -> ThreadChannel<Req, Resp> {
        ThreadChannel { endpoint: self.endpoint.clone(), tx: self.tx.clone(), timeout_ns: None }
    }

    /// This server's endpoint.
    pub fn endpoint(&self) -> &Endpoint {
        &self.endpoint
    }

    /// Stop the serving thread and wait for it to exit. Idempotent.
    pub fn kill(&mut self) {
        let _ = self.tx.send(Msg::Shutdown);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl<Req, Resp> Drop for ThreadServer<Req, Resp> {
    fn drop(&mut self) {
        let _ = self.tx.send(Msg::Shutdown);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl<Req, Resp> std::fmt::Debug for ThreadServer<Req, Resp> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadServer").field("endpoint", &self.endpoint).finish_non_exhaustive()
    }
}

/// Caller side of a [`ThreadServer`]. Cheap to clone; many threads may
/// call concurrently (each call gets its own reply channel).
pub struct ThreadChannel<Req, Resp> {
    endpoint: Endpoint,
    tx: Sender<Msg<Req, Resp>>,
    timeout_ns: Option<u64>,
}

impl<Req, Resp> ThreadChannel<Req, Resp> {
    /// Bound each call's wait for a reply to `ns` nanoseconds.
    /// A call that exceeds it fails with [`NetError::Timeout`]; the
    /// server may still process the request, but the reply is dropped
    /// (lost-reply semantics, as on a real network).
    pub fn with_timeout_ns(mut self, ns: u64) -> Self {
        self.timeout_ns = Some(ns);
        self
    }

    /// The configured deadline, if any.
    pub fn timeout_ns(&self) -> Option<u64> {
        self.timeout_ns
    }
}

impl<Req, Resp> Clone for ThreadChannel<Req, Resp> {
    fn clone(&self) -> Self {
        ThreadChannel {
            endpoint: self.endpoint.clone(),
            tx: self.tx.clone(),
            timeout_ns: self.timeout_ns,
        }
    }
}

impl<Req: Send, Resp: Send> Service<Req, Resp> for ThreadChannel<Req, Resp> {
    fn call(&self, req: Req) -> Result<Resp> {
        let (rtx, rrx) = sync_channel::<Resp>(1);
        self.tx
            .send(Msg::Call { req, reply: rtx, ctx: trace::current_context() })
            .map_err(|_| NetError::Disconnected { endpoint: self.endpoint.clone() })?;
        match self.timeout_ns {
            None => {
                rrx.recv().map_err(|_| NetError::Disconnected { endpoint: self.endpoint.clone() })
            }
            Some(ns) => rrx.recv_timeout(Duration::from_nanos(ns)).map_err(|e| match e {
                RecvTimeoutError::Timeout => {
                    NetError::Timeout { endpoint: self.endpoint.clone(), after_ns: ns }
                }
                RecvTimeoutError::Disconnected => {
                    NetError::Disconnected { endpoint: self.endpoint.clone() }
                }
            }),
        }
    }

    fn endpoint(&self) -> Endpoint {
        self.endpoint.clone()
    }
}

impl<Req, Resp> std::fmt::Debug for ThreadChannel<Req, Resp> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadChannel")
            .field("endpoint", &self.endpoint)
            .field("timeout_ns", &self.timeout_ns)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn requests_cross_a_real_thread() {
        let main = std::thread::current().id();
        let srv = ThreadServer::spawn(Endpoint::new("adder", 1), move |x: u64| {
            assert_ne!(std::thread::current().id(), main);
            x + 1
        });
        let chan = srv.channel();
        for i in 0..100 {
            assert_eq!(chan.call(i).unwrap(), i + 1);
        }
    }

    #[test]
    fn concurrent_callers_each_get_their_own_reply() {
        let srv = Arc::new(ThreadServer::spawn(Endpoint::new("echo", 0), |x: u64| x * 10));
        let handles: Vec<_> = (0..8u64)
            .map(|t| {
                let chan = srv.channel();
                std::thread::spawn(move || {
                    for i in 0..200u64 {
                        let v = t * 1000 + i;
                        assert_eq!(chan.call(v).unwrap(), v * 10);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn killed_server_disconnects_callers() {
        let mut srv = ThreadServer::spawn(Endpoint::new("dead", 4), |x: u64| x);
        let chan = srv.channel();
        assert_eq!(chan.call(1).unwrap(), 1);
        srv.kill();
        srv.kill(); // idempotent
        let err = chan.call(2).unwrap_err();
        assert_eq!(err, NetError::Disconnected { endpoint: Endpoint::new("dead", 4) });
    }

    #[test]
    fn slow_handler_times_out_and_reply_is_dropped() {
        let srv = ThreadServer::spawn(Endpoint::new("slow", 2), |x: u64| {
            std::thread::sleep(Duration::from_millis(50));
            x
        });
        let chan = srv.channel().with_timeout_ns(1_000_000); // 1 ms
        let err = chan.call(7).unwrap_err();
        assert_eq!(
            err,
            NetError::Timeout { endpoint: Endpoint::new("slow", 2), after_ns: 1_000_000 }
        );
        // The server is still alive and serves later calls.
        let chan2 = srv.channel();
        assert_eq!(chan2.call(8).unwrap(), 8);
    }

    #[test]
    fn fast_handler_beats_its_deadline() {
        let srv = ThreadServer::spawn(Endpoint::new("fast", 3), |x: u64| x + 5);
        let chan = srv.channel().with_timeout_ns(5_000_000_000); // 5 s
        assert_eq!(chan.call(1).unwrap(), 6);
        assert_eq!(chan.timeout_ns(), Some(5_000_000_000));
    }

    #[test]
    fn trace_context_crosses_the_thread_hop() {
        use diesel_obs::{trace, Registry, Tracer};
        let registry = Arc::new(Registry::default());
        let tracer = Tracer::enabled(&registry);
        let server_tracer = tracer.clone();
        let srv = ThreadServer::spawn(Endpoint::new("traced", 5), move |x: u64| {
            let _t = trace::install_tracer(&server_tracer);
            let _s = trace::span("server.handle", &[]);
            x + 1
        });
        let chan = srv.channel();
        let _t = trace::install_tracer(&tracer);
        {
            let _root = trace::span("client.read", &[]);
            assert_eq!(chan.call(1).unwrap(), 2);
        }
        let spans = tracer.drain();
        let client = spans.iter().find(|s| s.name == "client.read").unwrap();
        let server = spans.iter().find(|s| s.name == "server.handle").unwrap();
        assert_eq!(server.trace, client.trace, "one connected trace");
        assert_eq!(server.parent, Some(client.id), "server span parents the caller's span");
    }

    #[test]
    fn drop_joins_the_serving_thread() {
        let srv = ThreadServer::spawn(Endpoint::new("tmp", 9), |x: u64| x);
        let chan = srv.channel();
        drop(srv);
        assert!(chan.call(1).is_err());
    }
}
