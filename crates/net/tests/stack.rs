//! The full middleware stack, composed the way production code uses it:
//! `Retry( Instrumented( FaultChannel( ThreadChannel ) ) )`, all driven
//! by one shared mock clock — no wall-clock sleeps anywhere. Metrics
//! flow into one `diesel_obs::Registry` and are read back as snapshots.

use std::sync::Arc;

use diesel_net::{
    Channel, Clock, Endpoint, EndpointMetrics, FaultChannel, FaultPolicy, Instrumented, MockClock,
    NetError, Retry, RetryPolicy, Service, ThreadServer,
};
use diesel_obs::Registry;

struct Stack {
    chan: Channel<u64, u64>,
    metrics: EndpointMetrics,
    clock: Arc<MockClock>,
    _server: ThreadServer<u64, u64>,
}

/// Build the production-shaped stack over a live serving thread.
fn stack(policy: FaultPolicy, retry: RetryPolicy) -> Stack {
    let clock = Arc::new(MockClock::new());
    let server = ThreadServer::spawn(Endpoint::new("peer", 2), |x: u64| x + 100);
    let reg = Registry::new(clock.clone());
    let metrics = EndpointMetrics::new(&reg, server.endpoint());
    let faulty = FaultChannel::new(server.channel(), policy, clock.clone());
    let measured = Instrumented::new(faulty, metrics.clone(), clock.clone());
    let chan: Channel<u64, u64> =
        Arc::new(Retry::new(measured, retry, clock.clone()).with_metrics(metrics.clone()));
    Stack { chan, metrics, clock, _server: server }
}

#[test]
fn clean_stack_is_transparent() {
    let s = stack(FaultPolicy::default(), RetryPolicy::default());
    for i in 0..50 {
        assert_eq!(s.chan.call(i).unwrap(), i + 100);
    }
    assert_eq!(s.metrics.requests(), 50);
    assert_eq!(s.metrics.errors(), 0);
    assert_eq!(s.metrics.retries(), 0);
    assert_eq!(s.metrics.latency().count, 50);
}

#[test]
fn every_request_dropped_escalates_after_retries() {
    // drop_prob = 1.0: each attempt burns the 50 ms drop timeout on the
    // mock clock and fails with Timeout. The retry layer makes 3
    // attempts with 1 ms + 2 ms backoff, then surfaces the timeout.
    let s = stack(
        FaultPolicy::drops(11, 1.0, 50_000_000),
        RetryPolicy::default(), // 3 attempts, 1 ms base, x2
    );
    let err = s.chan.call(7).unwrap_err();
    assert_eq!(err, NetError::Timeout { endpoint: Endpoint::new("peer", 2), after_ns: 50_000_000 });
    assert_eq!(s.metrics.requests(), 3, "one per attempt");
    assert_eq!(s.metrics.errors(), 3);
    assert_eq!(s.metrics.timeouts(), 3);
    assert_eq!(s.metrics.retries(), 2);
    // 3 drops at 50 ms + backoffs 1 ms + 2 ms — all on the mock clock.
    assert_eq!(s.clock.now_ns(), 153_000_000);
}

#[test]
fn transient_drops_are_absorbed_by_retries() {
    // ~30 % drops: with 3 attempts per call, the chance all three drop
    // is ~2.7 %; over 200 calls a handful may still escalate, but most
    // succeed, and every success went through the real serving thread.
    let s = stack(FaultPolicy::drops(5, 0.3, 1_000_000), RetryPolicy::default());
    let mut ok = 0u64;
    for i in 0..200 {
        match s.chan.call(i) {
            Ok(v) => {
                assert_eq!(v, i + 100);
                ok += 1;
            }
            Err(e) => assert!(e.is_retryable(), "only timeouts escape: {e:?}"),
        }
    }
    assert!(ok >= 180, "retries should absorb most drops: ok={ok}");
    assert!(s.metrics.retries() > 0, "some retries must have fired");
    assert_eq!(s.metrics.requests(), s.metrics.errors() + ok, "attempts = failures + successes");
}

#[test]
fn fault_sequences_are_deterministic_end_to_end() {
    let run = || {
        let s = stack(FaultPolicy::drops(99, 0.4, 1_000), RetryPolicy::none());
        let pattern: Vec<bool> = (0..300).map(|i| s.chan.call(i).is_ok()).collect();
        (pattern, s.clock.now_ns())
    };
    assert_eq!(run(), run());
}

#[test]
fn disconnected_server_is_not_retried() {
    let clock = Arc::new(MockClock::new());
    let mut server = ThreadServer::spawn(Endpoint::new("peer", 4), |x: u64| x);
    let reg = Registry::new(clock.clone());
    let metrics = EndpointMetrics::new(&reg, server.endpoint());
    let measured = Instrumented::new(server.channel(), metrics.clone(), clock.clone());
    let chan =
        Retry::new(measured, RetryPolicy::default(), clock.clone()).with_metrics(metrics.clone());
    assert_eq!(chan.call(1).unwrap(), 1);
    server.kill();
    let err = chan.call(2).unwrap_err();
    assert_eq!(err, NetError::Disconnected { endpoint: Endpoint::new("peer", 4) });
    // The registry snapshot carries the same story as the live handles.
    let snap = reg.snapshot();
    assert_eq!(snap.counter("net.requests{endpoint=peer@4}"), 2);
    assert_eq!(snap.counter("net.errors{endpoint=peer@4}"), 1);
    assert_eq!(snap.counter("net.retries{endpoint=peer@4}"), 0, "disconnects fail fast");
    assert_eq!(clock.now_ns(), 0, "no backoff burned");
}
