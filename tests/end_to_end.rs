//! End-to-end integration: the full write → snapshot → shuffle →
//! cached-read → train pipeline across every crate.

use std::sync::Arc;

use diesel_dlt::cache::{CacheConfig, CachePolicy, TaskCache, Topology};
use diesel_dlt::chunk::ChunkBuilderConfig;
use diesel_dlt::core::{ClientConfig, DieselClient, DieselServer, FuseConfig, FuseMount};
use diesel_dlt::kv::{ClusterConfig, KvCluster, ShardedKv};
use diesel_dlt::shuffle::ShuffleKind;
use diesel_dlt::store::{MemObjectStore, ObjectStore};
use diesel_dlt::train::loader::upload_samples;
use diesel_dlt::train::{train, DataLoader, Mlp, MlpConfig, SyntheticSpec, TrainConfig};

type Server = DieselServer<ShardedKv, MemObjectStore>;

fn small_chunk_server() -> Arc<Server> {
    Arc::new(DieselServer::new(Arc::new(ShardedKv::new()), Arc::new(MemObjectStore::new())))
}

fn client(
    server: &Arc<Server>,
    dataset: &str,
    chunk_size: usize,
) -> DieselClient<ShardedKv, MemObjectStore> {
    DieselClient::connect_with(
        server.clone(),
        dataset,
        ClientConfig {
            chunk: ChunkBuilderConfig { target_chunk_size: chunk_size, ..Default::default() },
        },
    )
    .with_deterministic_identity(1, 1, 100)
}

#[test]
fn write_snapshot_read_pipeline() {
    let server = small_chunk_server();
    let c = client(&server, "ds", 4096);
    let mut expect = Vec::new();
    for i in 0..200usize {
        let name = format!("cls{}/f{i:04}", i % 7);
        let data: Vec<u8> = (0..(50 + i % 300)).map(|j| ((i * 31 + j) % 256) as u8).collect();
        c.put(&name, &data).unwrap();
        expect.push((name, data));
    }
    c.flush().unwrap();

    // A second client (another worker) loads the snapshot from disk.
    let snap_path = std::env::temp_dir().join(format!("e2e-snap-{}.bin", std::process::id()));
    c.save_meta(&snap_path).unwrap();
    let reader = client(&server, "ds", 4096);
    reader.load_meta(&snap_path).unwrap();
    let _ = std::fs::remove_file(&snap_path);

    // Every file identical, via both metadata paths.
    for (name, data) in &expect {
        assert_eq!(reader.get(name).unwrap().as_ref(), &data[..], "{name}");
        assert_eq!(reader.stat(name).unwrap().length as usize, data.len());
    }
    // Directory structure.
    assert_eq!(reader.ls("").unwrap().len(), 7);
    assert_eq!(
        reader.ls("cls3").unwrap().len(),
        expect.iter().filter(|(n, _)| n.starts_with("cls3/")).count()
    );
}

#[test]
fn merged_server_reads_match_api_reads() {
    let server = small_chunk_server();
    let c = client(&server, "ds", 2048);
    let mut names = Vec::new();
    for i in 0..120usize {
        let name = format!("f{i:03}");
        c.put(&name, &[(i % 251) as u8; 100]).unwrap();
        names.push(name);
    }
    c.flush().unwrap();
    let refs: Vec<&str> = names.iter().map(String::as_str).collect();
    let merged = server.read_files_merged("ds", &refs).unwrap();
    for (i, name) in names.iter().enumerate() {
        assert_eq!(merged[i], server.read_file("ds", name).unwrap(), "{name}");
    }
}

#[test]
fn fuse_and_api_agree_through_cache_and_shuffle() {
    let server = small_chunk_server();
    let c = client(&server, "ds", 4096);
    for i in 0..150usize {
        c.put(&format!("d{}/f{i:04}", i % 3), &[(i % 256) as u8; 200]).unwrap();
    }
    c.flush().unwrap();
    c.download_meta().unwrap();

    let chunks = server.meta().chunk_ids("ds").unwrap();
    let cache = Arc::new(
        TaskCache::new(
            Topology::uniform(2, 2).unwrap(),
            server.store().clone(),
            "ds",
            chunks,
            CacheConfig { capacity_bytes_per_node: 1 << 30, policy: CachePolicy::OnDemand },
        )
        .unwrap(),
    );
    c.attach_cache(cache.clone());
    c.enable_shuffle(ShuffleKind::ChunkWise { group_size: 2 });

    let c = Arc::new(c);
    let fuse = FuseMount::mount(c.clone(), FuseConfig::default());
    let order = fuse.read_epoch_list(7, 0).unwrap();
    let mut seen = 0;
    for name in order.lines() {
        let via_fuse = fuse.read_file(name).unwrap();
        let via_api = c.get(name).unwrap();
        assert_eq!(via_fuse, via_api, "{name}");
        seen += 1;
    }
    assert_eq!(seen, 150);
    // Cache served the reads (each file read twice: fuse + api).
    assert!(cache.metrics().file_reads() >= 300);
}

#[test]
fn training_through_full_stack_converges() {
    let spec = SyntheticSpec::cifar_like();
    let train_set = spec.generate(800);
    let eval_set = spec.generate_eval(200);
    let server = small_chunk_server();
    let c = client(&server, "synth", 8192);
    upload_samples(&c, &train_set).unwrap();
    c.download_meta().unwrap();
    c.enable_shuffle(ShuffleKind::ChunkWise { group_size: 3 });

    let chunks = server.meta().chunk_ids("synth").unwrap();
    let cache = Arc::new(
        TaskCache::new(
            Topology::uniform(2, 2).unwrap(),
            server.store().clone(),
            "synth",
            chunks,
            CacheConfig { capacity_bytes_per_node: 1 << 30, policy: CachePolicy::Oneshot },
        )
        .unwrap(),
    );
    cache.prefetch_all().unwrap();
    c.attach_cache(cache);

    let loader = DataLoader::new(Arc::new(c), 32, 5);
    let mut model = Mlp::new(
        MlpConfig {
            input_dim: spec.dim,
            hidden: vec![48],
            classes: spec.classes,
            lr: 0.08,
            momentum: 0.9,
        },
        3,
    );
    let metrics =
        train(&mut model, &loader, &eval_set, &TrainConfig { epochs: 6, topk: (1, 5) }).unwrap();
    assert!(metrics.last().unwrap().topk > 0.8, "top-5 {:?}", metrics.last());
    assert!(metrics.last().unwrap().loss < metrics.first().unwrap().loss);
}

#[test]
fn kv_cluster_backend_works_end_to_end() {
    // Same pipeline but with the slot-routed cluster instead of one
    // instance — exercises routing + mput batching under real load.
    let kv = Arc::new(KvCluster::new(ClusterConfig { instances: 8, shards_per_instance: 8 }));
    let server = Arc::new(DieselServer::new(kv.clone(), Arc::new(MemObjectStore::new())));
    let c = DieselClient::connect_with(
        server.clone(),
        "ds",
        ClientConfig {
            chunk: ChunkBuilderConfig { target_chunk_size: 4096, ..Default::default() },
        },
    );
    for i in 0..300usize {
        c.put(&format!("p{}/f{i}", i % 5), &[i as u8; 64]).unwrap();
    }
    c.flush().unwrap();
    // Keys must actually spread across instances.
    let dist = kv.key_distribution();
    assert!(dist.iter().filter(|&&d| d > 0).count() >= 6, "{dist:?}");
    c.download_meta().unwrap();
    for i in (0..300).step_by(17) {
        assert_eq!(c.get(&format!("p{}/f{i}", i % 5)).unwrap().len(), 64);
    }
}

#[test]
fn dataset_lifecycle_put_delete_purge_recover() {
    let server = small_chunk_server();
    let c = client(&server, "ds", 2048);
    for i in 0..60usize {
        c.put(&format!("f{i:02}"), &[i as u8; 300]).unwrap();
    }
    c.flush().unwrap();

    // Delete a third of the files.
    for i in (0..60).step_by(3) {
        server.delete_file("ds", &format!("f{i:02}"), 999_000_000).unwrap();
    }
    let store_before = server.store().total_bytes();
    let purge = server.purge_dataset("ds", 999_000_001).unwrap();
    assert!(purge.bytes_reclaimed >= 20 * 300);
    assert!(server.store().total_bytes() < store_before);

    // Wipe the KV and rebuild from the purged chunks: deleted files must
    // stay gone, survivors must be intact.
    server.meta().kv().clear();
    server.recover_metadata_full("ds").unwrap();
    for i in 0..60usize {
        let name = format!("f{i:02}");
        if i % 3 == 0 {
            assert!(server.read_file("ds", &name).is_err(), "{name} should be gone");
        } else {
            assert_eq!(server.read_file("ds", &name).unwrap().as_ref(), &vec![i as u8; 300][..]);
        }
    }
    let rec = server.meta().dataset_record("ds").unwrap();
    assert_eq!(rec.file_count, 40);
}
