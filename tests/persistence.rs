//! Persistence across "process restarts": with a directory-backed
//! object store, chunks survive on disk; the in-memory KV database is
//! derived state that every fresh server rebuilds by scanning them —
//! the deployment story §4.1.2 enables.

use std::sync::Arc;

use diesel_dlt::chunk::ChunkBuilderConfig;
use diesel_dlt::core::{ClientConfig, DieselClient, DieselServer};
use diesel_dlt::kv::ShardedKv;
use diesel_dlt::store::{DirObjectStore, MemObjectStore, TieredStore};

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("diesel-persist-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

#[test]
fn dataset_survives_server_restart_on_disk() {
    let root = tmpdir("restart");
    let mut expect = Vec::new();

    // "Process 1": write the dataset to disk-backed storage.
    {
        let store = Arc::new(DirObjectStore::open(&root).unwrap());
        let server = Arc::new(DieselServer::new(Arc::new(ShardedKv::new()), store));
        let client = DieselClient::connect_with(
            server,
            "ds",
            ClientConfig {
                chunk: ChunkBuilderConfig { target_chunk_size: 4096, ..Default::default() },
            },
        )
        .with_deterministic_identity(1, 1, 500);
        for i in 0..80usize {
            let name = format!("c{}/f{i:03}", i % 4);
            let data: Vec<u8> = (0..(64 + i)).map(|j| ((i * 13 + j) % 256) as u8).collect();
            client.put(&name, &data).unwrap();
            expect.push((name, data));
        }
        client.flush().unwrap();
        // Server process "exits": its KV state is gone with it.
    }

    // "Process 2": brand-new server, empty KV, same directory.
    {
        let store = Arc::new(DirObjectStore::open(&root).unwrap());
        let server = Arc::new(DieselServer::new(Arc::new(ShardedKv::new()), store));
        assert!(server.meta().dataset_record("ds").is_err(), "fresh KV is empty");
        let report = server.recover_metadata_full("ds").unwrap();
        assert_eq!(report.files_recovered as usize, expect.len());

        let client = DieselClient::connect(server.clone(), "ds");
        client.download_meta().unwrap();
        for (name, data) in &expect {
            assert_eq!(client.get(name).unwrap().as_ref(), &data[..], "{name}");
        }
        // Housekeeping works against the recovered state too.
        server.delete_file("ds", &expect[0].0, 1_000_000_000).unwrap();
        let purge = server.purge_dataset("ds", 1_000_000_001).unwrap();
        assert!(purge.chunks_compacted >= 1);
        // The client's snapshot is now stale (compaction moved files to
        // a new chunk); `get` falls back to server-side metadata, and a
        // snapshot re-download restores the fast path.
        assert_eq!(client.get(&expect[1].0).unwrap().as_ref(), &expect[1].1[..]);
        client.download_meta().unwrap();
        assert_eq!(client.get(&expect[2].0).unwrap().as_ref(), &expect[2].1[..]);
    }
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn server_runs_on_tiered_ssd_hdd_storage() {
    // The Fig. 4 server cache: a DieselServer directly over a
    // TieredStore (fast mem tier bounded, slow tier authoritative).
    let fast = Arc::new(MemObjectStore::new());
    let slow = Arc::new(MemObjectStore::new());
    let tiered = Arc::new(TieredStore::new(fast, slow, 64 << 10));
    let server = Arc::new(DieselServer::new(Arc::new(ShardedKv::new()), tiered.clone()));
    let client = DieselClient::connect_with(
        server.clone(),
        "ds",
        ClientConfig {
            chunk: ChunkBuilderConfig { target_chunk_size: 8192, ..Default::default() },
        },
    )
    .with_deterministic_identity(2, 2, 600);

    for i in 0..60usize {
        client.put(&format!("f{i:03}"), &[(i % 251) as u8; 400]).unwrap();
    }
    client.flush().unwrap();
    client.download_meta().unwrap();

    // Writes land in the slow (authoritative) tier only.
    assert!(tiered.fast_resident_bytes() == 0);
    // Whole-chunk reads (what the task cache issues) promote chunks into
    // the fast tier; repeated reads hit it.
    let chunks = server.meta().chunk_ids("ds").unwrap();
    for &c in &chunks {
        server.read_chunk("ds", c).unwrap();
    }
    for &c in &chunks {
        server.read_chunk("ds", c).unwrap();
    }
    let metrics = tiered.metrics();
    assert!(metrics.promotions() > 0, "chunk reads must warm the fast tier");
    assert!(metrics.fast_hits() > 0, "second pass must hit the fast tier");
    assert!(tiered.fast_resident_bytes() <= 64 << 10, "fast tier stays within budget");

    // File reads through the client still return exact bytes.
    for i in 0..60usize {
        assert_eq!(
            client.get(&format!("f{i:03}")).unwrap().as_ref(),
            &vec![(i % 251) as u8; 400][..]
        );
    }
    // And metadata recovery works through the tiered front as well.
    server.meta().kv().clear();
    let report = server.recover_metadata_full("ds").unwrap();
    assert_eq!(report.files_recovered, 60);
}

#[test]
fn snapshot_file_round_trips_between_processes() {
    let root = tmpdir("snap");
    std::fs::create_dir_all(&root).unwrap();
    let snap_path = root.join("ds.snapshot");

    let store = Arc::new(DirObjectStore::open(root.join("objects")).unwrap());
    let server = Arc::new(DieselServer::new(Arc::new(ShardedKv::new()), store));
    let writer = DieselClient::connect(server.clone(), "ds");
    for i in 0..30usize {
        writer.put(&format!("f{i}"), &[1u8; 64]).unwrap();
    }
    writer.flush().unwrap();
    writer.save_meta(&snap_path).unwrap();

    // Another worker on "another node" (fresh client) loads it from the
    // shared filesystem, as §4.1.3 recommends, and reads data without
    // ever asking the server for metadata.
    let reader = DieselClient::connect(server.clone(), "ds");
    reader.load_meta(&snap_path).unwrap();
    assert!(reader.has_meta());
    assert_eq!(reader.ls("").unwrap().len(), 30);
    assert_eq!(reader.get("f17").unwrap().len(), 64);
    let _ = std::fs::remove_dir_all(&root);
}
