use std::sync::Arc;
use diesel_dlt::chunk::ChunkBuilderConfig;
use diesel_dlt::core::{ClientConfig, DieselClient, DieselServer};
use diesel_dlt::kv::ShardedKv;
use diesel_dlt::store::{DirObjectStore, ObjectStore};

#[test]
fn dbg() {
    let root = std::env::temp_dir().join(format!("dbg2-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let mut expect = Vec::new();
    {
        let store = Arc::new(DirObjectStore::open(&root).unwrap());
        let server = Arc::new(DieselServer::new(Arc::new(ShardedKv::new()), store));
        let client = DieselClient::connect_with(server, "ds",
            ClientConfig { chunk: ChunkBuilderConfig { target_chunk_size: 4096, ..Default::default() } })
            .with_deterministic_identity(1, 1, 500);
        for i in 0..80usize {
            let name = format!("c{}/f{i:03}", i % 4);
            let data: Vec<u8> = (0..(64 + i)).map(|j| ((i * 13 + j) % 256) as u8).collect();
            client.put(&name, &data).unwrap();
            expect.push((name, data));
        }
        client.flush().unwrap();
    }
    let store = Arc::new(DirObjectStore::open(&root).unwrap());
    let server = Arc::new(DieselServer::new(Arc::new(ShardedKv::new()), store.clone()));
    server.recover_metadata_full("ds").unwrap();
    let client = DieselClient::connect(server.clone(), "ds");
    client.download_meta().unwrap();
    for (name, data) in &expect {
        assert_eq!(client.get(name).unwrap().as_ref(), &data[..], "{name}");
    }
    eprintln!("keys before delete: {:?}", store.list_prefix("ds/").len());
    server.delete_file("ds", &expect[0].0, 1_000_000_000).unwrap();
    eprintln!("keys after delete: {:?}", store.list_prefix("ds/"));
    server.purge_dataset("ds", 1_000_000_001).unwrap();
}
