//! Cross-crate property-based tests: system-level invariants under
//! randomized workloads.

use std::collections::HashMap;
use std::sync::Arc;

use proptest::prelude::*;

use diesel_dlt::chunk::ChunkBuilderConfig;
use diesel_dlt::core::{ClientConfig, DieselClient, DieselServer};
use diesel_dlt::kv::ShardedKv;
use diesel_dlt::shuffle::ShuffleKind;
use diesel_dlt::store::{MemObjectStore, ObjectStore};

type Server = DieselServer<ShardedKv, MemObjectStore>;

fn server() -> Arc<Server> {
    Arc::new(DieselServer::new(Arc::new(ShardedKv::new()), Arc::new(MemObjectStore::new())))
}

fn client(s: &Arc<Server>, chunk_size: usize) -> DieselClient<ShardedKv, MemObjectStore> {
    DieselClient::connect_with(
        s.clone(),
        "prop",
        ClientConfig {
            chunk: ChunkBuilderConfig { target_chunk_size: chunk_size, ..Default::default() },
        },
    )
    .with_deterministic_identity(1, 1, 77)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Whatever mix of files is written, every byte comes back exactly —
    /// regardless of chunk size (i.e. of how files are packed/split).
    #[test]
    fn storage_is_content_faithful(
        files in proptest::collection::btree_map(
            "[a-z]{1,6}(/[a-z0-9]{1,6}){0,2}",
            proptest::collection::vec(any::<u8>(), 0..1500),
            1..40,
        ),
        chunk_size in 512usize..16384,
    ) {
        let s = server();
        let c = client(&s, chunk_size);
        for (name, data) in &files {
            c.put(name, data).unwrap();
        }
        c.flush().unwrap();
        c.download_meta().unwrap();
        for (name, data) in &files {
            let got = c.get(name).unwrap();
            prop_assert_eq!(got.as_ref(), &data[..]);
            prop_assert_eq!(c.stat(name).unwrap().length as usize, data.len());
        }
        // The dataset record's totals agree with what we wrote.
        let rec = s.meta().dataset_record("prop").unwrap();
        prop_assert_eq!(rec.file_count as usize, files.len());
        prop_assert_eq!(rec.total_bytes as usize, files.values().map(Vec::len).sum::<usize>());
    }

    /// Recovery from chunks is a lossless inverse of ingestion: for any
    /// write + delete sequence, wiping the KV and rescanning reproduces
    /// the exact same snapshot.
    #[test]
    fn recovery_is_lossless(
        files in proptest::collection::vec(
            ("[a-m]{2,8}", proptest::collection::vec(any::<u8>(), 1..400)),
            2..30,
        ),
        delete_mask in proptest::collection::vec(any::<bool>(), 2..30),
        chunk_size in 600usize..4000,
    ) {
        let s = server();
        let c = client(&s, chunk_size);
        let mut unique: HashMap<String, Vec<u8>> = HashMap::new();
        for (name, data) in files {
            unique.insert(name, data);
        }
        for (name, data) in &unique {
            c.put(name, data).unwrap();
        }
        c.flush().unwrap();
        let names: Vec<String> = unique.keys().cloned().collect();
        for (i, name) in names.iter().enumerate() {
            if *delete_mask.get(i).unwrap_or(&false) && unique.len() > 1 {
                s.delete_file("prop", name, 9_000_000).unwrap();
            }
        }
        let before = s.build_snapshot("prop").unwrap();
        s.meta().kv().clear();
        s.recover_metadata_full("prop").unwrap();
        let after = s.build_snapshot("prop").unwrap();
        prop_assert_eq!(before.chunks, after.chunks);
        prop_assert_eq!(before.files, after.files);
    }

    /// Both shuffle strategies produce exact permutations of the file
    /// set, for any dataset shape, and chunk-wise groups never exceed
    /// the configured chunk budget.
    #[test]
    fn shuffles_are_permutations_end_to_end(
        nfiles in 1usize..120,
        chunk_size in 400usize..3000,
        group_size in 1usize..9,
        epoch in 0u64..4,
    ) {
        let s = server();
        let c = client(&s, chunk_size);
        for i in 0..nfiles {
            c.put(&format!("f{i:04}"), &[7u8; 100]).unwrap();
        }
        c.flush().unwrap();
        c.download_meta().unwrap();
        for kind in [ShuffleKind::DatasetShuffle, ShuffleKind::ChunkWise { group_size }] {
            c.enable_shuffle(kind);
            let mut order = c.epoch_file_list(9, epoch).unwrap();
            prop_assert_eq!(order.len(), nfiles);
            order.sort();
            order.dedup();
            prop_assert_eq!(order.len(), nfiles, "duplicates under {:?}", kind);
            if let ShuffleKind::ChunkWise { group_size } = kind {
                let plan = c.epoch_plan(9, epoch).unwrap();
                for set in plan.group_chunk_sets() {
                    prop_assert!(set.len() <= group_size);
                }
            }
        }
    }

    /// Purging after arbitrary deletions never breaks surviving files
    /// and never grows the store.
    #[test]
    fn purge_preserves_survivors(
        nfiles in 4usize..50,
        dels in proptest::collection::vec(0usize..50, 1..20),
        chunk_size in 600usize..4000,
    ) {
        let s = server();
        let c = client(&s, chunk_size);
        for i in 0..nfiles {
            c.put(&format!("f{i:03}"), &[(i % 251) as u8; 150]).unwrap();
        }
        c.flush().unwrap();
        let mut deleted = std::collections::HashSet::new();
        for d in dels {
            let i = d % nfiles;
            if deleted.insert(i) {
                s.delete_file("prop", &format!("f{i:03}"), 8_888_888).unwrap();
            }
        }
        let bytes_before = s.store().total_bytes();
        s.purge_dataset("prop", 8_888_889).unwrap();
        prop_assert!(s.store().total_bytes() <= bytes_before);
        for i in 0..nfiles {
            let name = format!("f{i:03}");
            if deleted.contains(&i) {
                prop_assert!(s.read_file("prop", &name).is_err());
            } else {
                let got = s.read_file("prop", &name).unwrap();
                prop_assert_eq!(got.as_ref(), &[(i % 251) as u8; 150][..]);
            }
        }
        // Dataset counters stay consistent with the surviving set.
        let rec = s.meta().dataset_record("prop").unwrap();
        prop_assert_eq!(rec.file_count as usize, nfiles - deleted.len());
    }
}
