//! Telemetry-plane integration (DESIGN.md §15): the flight recorder,
//! SLO monitor and Prometheus exposition driven end to end —
//! deterministically on `MockClock` via the simnet replay, and over the
//! wire via `ServerRequest::Scrape`.
//!
//! ci.sh runs this file under `DIESEL_LOCKDEP=fail`, so the telemetry
//! plane's two new locks (the recorder's frame ring, the monitor's
//! state map) are also witnessed against the registry's lock order on
//! every path exercised here.

use std::sync::Arc;

use diesel_dlt::chunk::ChunkBuilderConfig;
use diesel_dlt::core::{
    ClientConfig, DieselClient, DieselServer, ServerPool, ServerRequest, SloTarget,
};
use diesel_dlt::kv::ShardedKv;
use diesel_dlt::obs::{parse_prometheus, PromSample};
use diesel_dlt::simnet::{
    noisy_neighbour_config, run_telemetry, MultiTenantConfig, ServiceModel, SimTime,
    TelemetryConfig, TenantSpec,
};
use diesel_dlt::store::MemObjectStore;

type Server = DieselServer<ShardedKv, MemObjectStore>;

fn small_chunks() -> ClientConfig {
    ClientConfig { chunk: ChunkBuilderConfig { target_chunk_size: 2048, ..Default::default() } }
}

/// Two runs of the same MockClock'd scenario must produce byte-identical
/// recordings — the recorder is part of the replayability contract, not
/// an approximation of it.
#[test]
fn recorder_sessions_are_byte_identical() {
    let cfg = noisy_neighbour_config(true);
    let a = run_telemetry(&cfg);
    let b = run_telemetry(&cfg);
    assert_eq!(a.recording, b.recording);
    assert_eq!(a.scrape, b.scrape);
    assert_eq!(a.transitions, b.transitions);
    // The recording is non-trivial: a header plus many delta frames.
    assert!(a.recording.starts_with("diesel-recorder v1"));
    assert!(a.recording.lines().filter(|l| l.starts_with("frame ")).count() > 10);
}

/// Admission control is the difference between a green and a red light
/// tenant beside a 10× neighbour — the §15 acceptance scenario.
#[test]
fn admission_flips_light_tenant_health() {
    let fair = run_telemetry(&noisy_neighbour_config(true));
    assert!(fair.healthy("light"), "light tenant green under admission");
    assert!(
        !fair.transitions.iter().any(|t| t.dataset == "light"),
        "no SLO transitions at all for the protected tenant"
    );

    let open = run_telemetry(&noisy_neighbour_config(false));
    assert!(!open.healthy("light"), "light tenant red without admission");
    let light: Vec<&str> = open
        .transitions
        .iter()
        .filter(|t| t.dataset == "light")
        .map(|t| t.scope.as_str())
        .collect();
    assert_eq!(light, ["slo.breach"], "exactly one breach, never recovered");
}

/// A bursty neighbour that stops mid-run produces the exact sequence
/// breach → recovered for the light tenant: the fast window burns while
/// the queue is backed up and clears once the backlog drains.
#[test]
fn breach_then_recover_sequence_is_exact() {
    let slo = SimTime::from_millis(20);
    let cfg = TelemetryConfig {
        sim: MultiTenantConfig {
            tenants: vec![
                // Light tenant runs the whole 5 s.
                TenantSpec::new("light", 800.0, 4_000),
                // Heavy neighbour bursts 10× for the first ~2 s only.
                TenantSpec::new("heavy", 8_000.0, 16_000),
            ],
            servers: 4,
            service: ServiceModel::default(),
            slo,
            admission: None,
            seed: 11,
        },
        tick: SimTime::from_millis(250),
        fast_window: SimTime::from_millis(1_000),
        slow_window: SimTime::from_millis(3_000),
        targets: vec![SloTarget { read_p99_ns: Some(slo.as_nanos()), ..SloTarget::new("light") }],
    };
    let out = run_telemetry(&cfg);
    let light: Vec<(&str, &str)> = out
        .transitions
        .iter()
        .filter(|t| t.dataset == "light")
        .map(|t| (t.scope.as_str(), t.slo.as_str()))
        .collect();
    assert_eq!(
        light,
        [("slo.breach", "read_p99"), ("slo.recovered", "read_p99")],
        "exact breach→recover sequence; transitions: {:?}",
        out.transitions
    );
    assert!(out.healthy("light"), "recovered by end of run");
    // And the sequence replays identically.
    assert_eq!(out.transitions, run_telemetry(&cfg).transitions);
}

fn sample<'a>(samples: &'a [PromSample], name: &str, dataset: &str) -> &'a PromSample {
    samples
        .iter()
        .find(|s| s.name == name && s.label("dataset") == Some(dataset))
        .unwrap_or_else(|| panic!("sample {name}{{dataset={dataset}}} missing"))
}

/// `ServerRequest::Scrape` over the wire: the reply is valid Prometheus
/// text whose values agree with the `Stats` snapshot.
#[test]
fn scrape_request_round_trips_over_the_wire() {
    let server: Arc<Server> =
        Arc::new(DieselServer::new(Arc::new(ShardedKv::new()), Arc::new(MemObjectStore::new())));
    let client = DieselClient::connect_with(server.clone(), "ds", small_chunks());
    for i in 0..20 {
        client.put(&format!("f{i:02}"), &[i as u8; 200]).unwrap();
    }
    client.flush().unwrap();
    client.download_meta().unwrap();
    for i in 0..7 {
        client.get(&format!("f{i:02}")).unwrap();
    }

    let text = server.handle(ServerRequest::Scrape).unwrap().into_text().unwrap();
    let samples = parse_prometheus(&text).expect("wire scrape parses");
    assert_eq!(sample(&samples, "server_file_reads", "ds").value, 7.0);

    // The same numbers the Stats snapshot carries.
    let stats = server.handle(ServerRequest::Stats).unwrap().into_stats().unwrap();
    assert_eq!(stats.sum_counter("server.file_reads"), 7);
    // Read latency was recorded per-tenant on the wire path.
    let lat = sample(&samples, "server_read_latency_count", "ds");
    assert_eq!(lat.value, 7.0, "one latency sample per wire read");
}

/// The pool-wide scrape merges front-ends without double-counting the
/// shared backend, exactly like `stats()`.
#[test]
fn pool_scrape_merges_once() {
    let pool = Arc::new(ServerPool::deploy(
        3,
        Arc::new(ShardedKv::new()),
        Arc::new(MemObjectStore::new()),
    ));
    let writer = DieselClient::connect_with(pool.server(0).clone(), "ds", small_chunks());
    for i in 0..12 {
        writer.put(&format!("f{i:02}"), &[i as u8; 100]).unwrap();
    }
    writer.flush().unwrap();
    for i in 0..3 {
        let reader = DieselClient::connect(pool.server(i).clone(), "ds");
        reader.download_meta().unwrap();
        for j in 0..=i {
            reader.get(&format!("f{j:02}")).unwrap();
        }
    }

    let samples = parse_prometheus(&pool.scrape()).expect("pool scrape parses");
    assert_eq!(sample(&samples, "server_file_reads", "ds").value, 6.0, "1+2+3 across front-ends");
    let kv_puts: f64 = samples.iter().filter(|s| s.name == "kv_puts").map(|s| s.value).sum();
    let stats_puts = pool.stats().sum_counter("kv.puts") as f64;
    assert_eq!(kv_puts, stats_puts, "backend counted exactly once");
}

/// A telemetry-enabled deployment: the background driver ticks the
/// recorder on the system clock and the SLO monitor sees wire traffic.
#[test]
fn deployed_telemetry_records_wire_traffic() {
    let server: Arc<Server> = Arc::new(
        DieselServer::new(Arc::new(ShardedKv::new()), Arc::new(MemObjectStore::new()))
            .with_slo_targets(vec![SloTarget {
                read_p99_ns: Some(60_000_000_000),
                ..SloTarget::new("ds")
            }]),
    );
    let client = DieselClient::connect_with(server.clone(), "ds", small_chunks());
    for i in 0..10 {
        client.put(&format!("f{i:02}"), &[i as u8; 100]).unwrap();
    }
    client.flush().unwrap();
    client.download_meta().unwrap();

    let rec = server.recorder().expect("recorder attached").clone();
    let monitor = server.slo_monitor().expect("monitor attached").clone();
    rec.tick();
    for i in 0..10 {
        client.get(&format!("f{i:02}")).unwrap();
    }
    rec.tick();
    let window = 60_000_000_000;
    assert_eq!(rec.delta("server.file_reads{dataset=ds}", window), 10);
    assert!(rec.percentile_over("server.read_latency{dataset=ds}", 0.99, window) > 0);
    let report = monitor.evaluate().into_iter().find(|r| r.dataset == "ds").expect("report for ds");
    assert!(report.healthy(), "a 60 s p99 target cannot burn on an in-memory read");
}
