//! Cross-layer RPC integration: a libDIESEL client talking to a
//! DIESEL server over the real `diesel-net` stack — serving thread,
//! per-request timeout, retry, and per-endpoint stats — instead of
//! direct in-process dispatch. The paper runs this boundary over
//! Thrift; here every transport failure mode is driven deterministically.

use std::sync::Arc;

use diesel_dlt::chunk::ChunkBuilderConfig;
use diesel_dlt::core::{
    ClientConfig, DieselClient, DieselError, DieselServer, ServerPool, ServerReply, ServerRequest,
};
use diesel_dlt::kv::ShardedKv;
use diesel_dlt::net::{
    Channel, Endpoint, EndpointMetrics, Instrumented, NetError, Retry, RetryPolicy, Service,
    SystemClock, ThreadServer,
};
use diesel_dlt::obs::Registry;
use diesel_dlt::store::MemObjectStore;

type Server = DieselServer<ShardedKv, MemObjectStore>;

fn server() -> Arc<Server> {
    Arc::new(DieselServer::new(Arc::new(ShardedKv::new()), Arc::new(MemObjectStore::new())))
}

fn small_chunks() -> ClientConfig {
    ClientConfig { chunk: ChunkBuilderConfig { target_chunk_size: 2048, ..Default::default() } }
}

/// Wrap a server in a serving thread and return the full client-side
/// stack: Retry(Instrumented(ThreadChannel)).
fn serve(
    srv: Arc<Server>,
    node: usize,
    registry: &Registry,
) -> (ThreadServer<ServerRequest, ServerReply>, Channel<ServerRequest, ServerReply>) {
    let thread = ThreadServer::spawn(Endpoint::new("server", node), move |req| srv.handle(req));
    let clock = Arc::new(SystemClock::new());
    let metrics = EndpointMetrics::new(registry, thread.endpoint());
    let measured =
        Instrumented::new(thread.channel().with_timeout_ns(2_000_000_000), metrics, clock.clone());
    let chan: Channel<ServerRequest, ServerReply> =
        Arc::new(Retry::new(measured, RetryPolicy::default(), clock));
    (thread, chan)
}

#[test]
fn full_client_api_over_thread_transport() {
    let srv = server();
    let registry = Registry::default();
    let (thread, chan) = serve(srv.clone(), 0, &registry);
    let c: DieselClient<ShardedKv, MemObjectStore> =
        DieselClient::connect_channel_with(chan, "ds", small_chunks());

    // Write path: every chunk ships over the serving thread.
    for i in 0..30 {
        c.put(&format!("cls{}/img{i:03}", i % 3), &[i as u8; 150]).unwrap();
    }
    c.flush().unwrap();

    // Metadata + read path, all RPC.
    c.download_meta().unwrap();
    assert_eq!(c.file_list().unwrap().len(), 30);
    assert_eq!(c.stat("cls0/img000").unwrap().length, 150);
    assert_eq!(c.ls("cls1").unwrap().len(), 10);
    for i in 0..30 {
        let name = format!("cls{}/img{i:03}", i % 3);
        assert_eq!(c.get(&name).unwrap().as_ref(), &vec![i as u8; 150][..], "{name}");
    }
    c.delete("cls0/img000").unwrap();
    assert!(c.get("cls0/img000").is_err());

    // The endpoint accounted for every round trip, with no failures.
    let snap = registry.snapshot();
    let requests = snap.counter("net.requests{endpoint=server@0}");
    // 30 ReadByMeta + chunk ships + snapshot + delete; stat/ls are
    // answered from the local snapshot without an RPC.
    assert!(requests >= 33, "expected ≥ 33 RPCs, saw {requests}");
    assert_eq!(snap.counter("net.errors{endpoint=server@0}"), 0);
    assert_eq!(snap.counter("net.retries{endpoint=server@0}"), 0);
    assert_eq!(snap.histogram_summary("net.latency{endpoint=server@0}").count, requests);

    drop(thread);
}

#[test]
fn killed_server_surfaces_as_net_error() {
    let srv = server();
    let registry = Registry::default();
    let (mut thread, chan) = serve(srv.clone(), 3, &registry);
    let c: DieselClient<ShardedKv, MemObjectStore> =
        DieselClient::connect_channel_with(chan, "ds", small_chunks());
    c.put("a", b"payload").unwrap();
    c.flush().unwrap();

    thread.kill();
    let err = c.flush_probe();
    assert_eq!(
        err,
        DieselError::Net(NetError::Disconnected { endpoint: Endpoint::new("server", 3) })
    );
}

#[test]
fn pool_channel_and_thread_transport_compose() {
    // Request-time balancing over a pool, reached through a serving
    // thread: Retry(Instrumented(ThreadChannel(BalancedChannel(pool)))).
    let pool = Arc::new(ServerPool::deploy(
        3,
        Arc::new(ShardedKv::new()),
        Arc::new(MemObjectStore::new()),
    ));
    let pool_conn = pool.channel();
    let registry = Registry::default();
    let thread =
        ThreadServer::spawn(Endpoint::new("pool-gw", 0), move |req| pool_conn.call(req).unwrap());
    let clock = Arc::new(SystemClock::new());
    let metrics = EndpointMetrics::new(&registry, thread.endpoint());
    let chan: Channel<ServerRequest, ServerReply> =
        Arc::new(Instrumented::new(thread.channel(), metrics, clock));

    let c: DieselClient<ShardedKv, MemObjectStore> =
        DieselClient::connect_channel_with(chan, "ds", small_chunks());
    for i in 0..20 {
        c.put(&format!("f{i:02}"), &[i as u8; 100]).unwrap();
    }
    c.flush().unwrap();
    c.download_meta().unwrap();
    for i in 0..20 {
        assert_eq!(c.get(&format!("f{i:02}")).unwrap().as_ref(), &vec![i as u8; 100][..]);
    }
    // Shared backends: any pool member sees the writes.
    assert_eq!(pool.server(1).meta().dataset_record("ds").unwrap().file_count, 20);
    let snap = registry.snapshot();
    assert!(snap.counter("net.requests{endpoint=pool-gw@0}") >= 22);

    drop(thread);
}

// -- helper: probe a transport failure without panicking mid-API ------

trait FlushProbe {
    fn flush_probe(&self) -> DieselError;
}

impl FlushProbe for DieselClient<ShardedKv, MemObjectStore> {
    fn flush_probe(&self) -> DieselError {
        self.put("probe", b"x").unwrap();
        self.flush().unwrap_err()
    }
}
