//! Fault-tolerance integration tests: the failure scenarios of §4.1.2
//! (metadata loss) and §4.2 (cache node loss), driven through the full
//! stack, plus concurrent-access safety.

use std::sync::Arc;

use diesel_dlt::cache::{CacheConfig, CachePolicy, TaskCache, TenantCacheMap, Topology};
use diesel_dlt::chunk::ChunkBuilderConfig;
use diesel_dlt::core::{ClientConfig, DieselClient, DieselServer};
use diesel_dlt::kv::{ClusterConfig, KvCluster, KvStore};
use diesel_dlt::store::{MemObjectStore, ObjectStore};

type ClusterServer = DieselServer<KvCluster, MemObjectStore>;

fn cluster_server(instances: usize) -> (Arc<KvCluster>, Arc<ClusterServer>) {
    let kv = Arc::new(KvCluster::new(ClusterConfig { instances, shards_per_instance: 8 }));
    let server = Arc::new(DieselServer::new(kv.clone(), Arc::new(MemObjectStore::new())));
    (kv, server)
}

fn populate(server: &Arc<ClusterServer>, files: usize) -> Vec<String> {
    let c = DieselClient::connect_with(
        server.clone(),
        "ds",
        ClientConfig {
            chunk: ChunkBuilderConfig { target_chunk_size: 4096, ..Default::default() },
        },
    )
    .with_deterministic_identity(3, 3, 5_000);
    let mut names = Vec::new();
    for i in 0..files {
        let name = format!("c{}/f{i:05}", i % 4);
        c.put(&name, &[(i % 251) as u8; 200]).unwrap();
        names.push(name);
    }
    c.flush().unwrap();
    names
}

#[test]
fn metadata_survives_any_single_instance_loss() {
    for victim in 0..4usize {
        let (kv, server) = cluster_server(4);
        let names = populate(&server, 200);
        let keys_before = kv.len();

        kv.fail_instance(victim);
        kv.recover_instance(victim); // back, but empty
        assert!(kv.len() < keys_before, "victim {victim} lost nothing?");

        server.recover_metadata_full("ds").unwrap();
        assert!(kv.len() >= keys_before, "victim {victim}: keys not restored");
        for n in &names {
            assert_eq!(
                server.read_file("ds", n).unwrap().len(),
                200,
                "file {n} unreadable after instance {victim} recovery"
            );
        }
    }
}

#[test]
fn repeated_power_loss_is_idempotent() {
    let (kv, server) = cluster_server(4);
    let names = populate(&server, 150);
    let snapshot1 = server.build_snapshot("ds").unwrap();
    for round in 0..3 {
        kv.power_loss();
        server.recover_metadata_full("ds").unwrap();
        let snap = server.build_snapshot("ds").unwrap();
        assert_eq!(snap.chunks, snapshot1.chunks, "round {round}: chunk set drifted");
        assert_eq!(snap.files, snapshot1.files, "round {round}: file set drifted");
    }
    for n in names.iter().step_by(13) {
        assert!(server.read_file("ds", n).is_ok());
    }
}

#[test]
fn reads_continue_during_kv_instance_outage_with_snapshot() {
    // The whole point of snapshots: metadata loss does not block reads,
    // because clients never consult the KV database on the read path.
    let (kv, server) = cluster_server(4);
    let names = populate(&server, 200);
    let client = DieselClient::connect(server.clone(), "ds");
    client.download_meta().unwrap();

    kv.fail_instance(0);
    kv.fail_instance(1);
    for n in &names {
        assert_eq!(client.get(n).unwrap().len(), 200, "{n} must read during outage");
        assert!(client.stat(n).is_ok());
    }
    // Server-side metadata lookups, by contrast, partially fail.
    let failures = names.iter().filter(|n| server.meta().file_meta("ds", n).is_err()).count();
    assert!(failures > 0, "some server-side lookups should hit the dead instances");
}

#[test]
fn cache_failures_cascade_correctly() {
    let (_, server) = cluster_server(2);
    let names = populate(&server, 240);
    let client = DieselClient::connect(server.clone(), "ds");
    client.download_meta().unwrap();

    let chunks = server.meta().chunk_ids("ds").unwrap();
    let cache = Arc::new(
        TaskCache::new(
            Topology::uniform(4, 2).unwrap(),
            server.store().clone(),
            "ds",
            chunks,
            CacheConfig { capacity_bytes_per_node: 1 << 30, policy: CachePolicy::Oneshot },
        )
        .unwrap(),
    );
    cache.prefetch_all().unwrap();
    client.attach_cache(cache.clone());

    // Kill nodes one after another; reads must always succeed (fallback)
    // and the fraction served by the cache must shrink monotonically.
    let mut prev_hits = u64::MAX;
    for victim in 0..4usize {
        cache.kill_node(victim);
        let before = cache.metrics().chunk_hits();
        for n in &names {
            assert_eq!(client.get(n).unwrap().len(), 200);
        }
        let hits = cache.metrics().chunk_hits() - before;
        assert!(hits < prev_hits, "hits must shrink as nodes die");
        prev_hits = hits;
    }
    // All nodes dead: everything still reads via the server.
    let before = cache.metrics().chunk_hits();
    for n in &names {
        assert_eq!(client.get(n).unwrap().len(), 200);
    }
    assert_eq!(cache.metrics().chunk_hits() - before, 0);

    // Recover everything; cache serves again.
    for node in 0..4 {
        cache.recover_node(node).unwrap();
    }
    let before = cache.metrics().chunk_hits();
    for n in &names {
        client.get(n).unwrap();
    }
    assert_eq!(cache.metrics().chunk_hits() - before, names.len() as u64);
}

#[test]
fn concurrent_readers_during_node_failure() {
    let (_, server) = cluster_server(2);
    let names = Arc::new(populate(&server, 200));
    let chunks = server.meta().chunk_ids("ds").unwrap();
    let cache = Arc::new(
        TaskCache::new(
            Topology::uniform(3, 2).unwrap(),
            server.store().clone(),
            "ds",
            chunks,
            CacheConfig { capacity_bytes_per_node: 1 << 30, policy: CachePolicy::Oneshot },
        )
        .unwrap(),
    );
    cache.prefetch_all().unwrap();

    let make_client = || {
        let c = DieselClient::connect(server.clone(), "ds");
        c.download_meta().unwrap();
        c.attach_cache(cache.clone());
        Arc::new(c)
    };
    let mut handles = Vec::new();
    for t in 0..6 {
        let c = make_client();
        let names = names.clone();
        let cache = cache.clone();
        handles.push(std::thread::spawn(move || {
            for round in 0..5 {
                if t == 0 && round == 2 {
                    cache.kill_node(1); // fault injected mid-flight
                }
                for n in names.iter() {
                    assert_eq!(c.get(n).unwrap().len(), 200);
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
}

/// Populate `dataset` on `server` with `files` 200-byte files using a
/// per-tenant deterministic identity, so tenants never share chunk ids.
fn populate_tenant(
    server: &Arc<ClusterServer>,
    dataset: &str,
    files: usize,
    seed: u64,
) -> Vec<String> {
    let c = DieselClient::connect_with(
        server.clone(),
        dataset,
        ClientConfig {
            chunk: ChunkBuilderConfig { target_chunk_size: 4096, ..Default::default() },
        },
    )
    .with_deterministic_identity(seed, seed as u32, 5_000 + seed as u32);
    let mut names = Vec::new();
    for i in 0..files {
        let name = format!("c{}/f{i:05}", i % 4);
        c.put(&name, &[(i % 251) as u8; 200]).unwrap();
        names.push(name);
    }
    c.flush().unwrap();
    names
}

#[test]
fn tenant_a_corruption_leaves_tenant_b_byte_identical() {
    // The §4.2 failure-containment story, multi-tenant edition: tenant A
    // loses its cache nodes *and* its backing chunks are corrupted
    // mid-epoch. Tenant B — its own `TaskCache` over the same shared
    // plane via `TenantCacheMap` — must keep serving byte-identical
    // batches from fully resident chunks, untouched by A's chaos.
    let (_, server) = cluster_server(2);
    let names_a = populate_tenant(&server, "tenant-a", 160, 3);
    let names_b = populate_tenant(&server, "tenant-b", 160, 7);

    let tenants = TenantCacheMap::new(
        Topology::uniform(4, 2).unwrap(),
        server.store().clone(),
        1 << 30,
        CachePolicy::Oneshot,
    );
    let cache_a =
        tenants.register("tenant-a", server.meta().chunk_ids("tenant-a").unwrap(), 1).unwrap();
    let cache_b =
        tenants.register("tenant-b", server.meta().chunk_ids("tenant-b").unwrap(), 1).unwrap();
    cache_a.prefetch_all().unwrap();
    cache_b.prefetch_all().unwrap();

    let client_a = DieselClient::connect(server.clone(), "tenant-a");
    client_a.download_meta().unwrap();
    client_a.attach_cache(cache_a.clone());
    let client_b = DieselClient::connect(server.clone(), "tenant-b");
    client_b.download_meta().unwrap();
    client_b.attach_cache(cache_b.clone());

    // Reference epoch for tenant B before any fault.
    let baseline: Vec<Vec<u8>> =
        names_b.iter().map(|n| client_b.get(n).unwrap().to_vec()).collect();
    let loads_before = cache_b.metrics().chunk_loads();
    assert!((cache_b.resident_fraction() - 1.0).abs() < 1e-9);

    // Mid-epoch chaos in tenant A: half way through B's sweep, kill all
    // of A's cache nodes and overwrite A's backing chunks with garbage.
    let mid = names_b.len() / 2;
    let mut epoch: Vec<Vec<u8>> = Vec::new();
    for (i, n) in names_b.iter().enumerate() {
        if i == mid {
            for node in 0..4 {
                cache_a.kill_node(node);
            }
            for id in server.meta().chunk_ids("tenant-a").unwrap() {
                let key = diesel_dlt::meta::recovery::chunk_object_key("tenant-a", id);
                server.store().put(&key, vec![0xde; 64].into()).unwrap();
            }
        }
        epoch.push(client_b.get(n).unwrap().to_vec());
    }
    assert_eq!(epoch, baseline, "tenant B's batches must be byte-identical through A's failure");

    // B's residency and load counters are untouched: nothing was evicted
    // or re-fetched because of A.
    assert!((cache_b.resident_fraction() - 1.0).abs() < 1e-9, "B's residency must be untouched");
    assert_eq!(cache_b.metrics().chunk_loads(), loads_before);
    assert_eq!(cache_b.metrics().evictions(), 0);

    // Tenant A, by contrast, really is broken: its cache is dead and the
    // server-side fallback now reads corrupted chunks.
    assert!(names_a.iter().any(|n| client_a.get(n).is_err()), "tenant A should be failing");

    // B's budget share is exactly half the node budget under equal
    // weights, and survives A's failure.
    assert_eq!(tenants.budget_of("tenant-b"), Some((1u64 << 30) / 2));
}

#[test]
fn partial_timestamp_recovery_leaves_old_chunks_untouched() {
    let (kv, server) = cluster_server(4);
    // Two write generations with distinct chunk-ID timestamps.
    for (gen, ts) in [(0u32, 1_000u32), (1, 2_000)] {
        let c = DieselClient::connect_with(
            server.clone(),
            "ds",
            ClientConfig {
                chunk: ChunkBuilderConfig { target_chunk_size: 2048, ..Default::default() },
            },
        )
        .with_deterministic_identity(gen as u64 + 1, gen + 1, ts);
        for i in 0..40 {
            c.put(&format!("g{gen}/f{i:03}"), &[gen as u8; 128]).unwrap();
        }
        c.flush().unwrap();
    }
    // Lose only generation-1 metadata.
    kv.power_loss();
    // First restore everything, then corrupt gen-1 again to prove the
    // partial scan touches only recent chunks.
    server.recover_metadata_full("ds").unwrap();
    let kv_full = kv.len();
    for i in 0..40 {
        kv.delete(&format!("f/ds/g1/f{i:03}")).unwrap();
    }
    let report = server.recover_metadata_since("ds", 1_500).unwrap();
    assert_eq!(report.files_recovered, 40, "only generation 1 rescanned");
    assert_eq!(kv.len(), kv_full);
    assert!(server.read_file("ds", "g1/f039").is_ok());
    assert!(server.read_file("ds", "g0/f000").is_ok());
}
