//! Concurrency determinism: the `diesel-exec` refactor's contract is
//! that worker count is a *performance* knob, never a *behaviour* knob.
//! Every test here runs the same workload at workers = 1 (inline), 2
//! and 8 and demands identical observable results — byte-identical
//! training batches, identical prefetch `LoadReport`s — including under
//! injected storage latency and injected storage faults.

use std::sync::Arc;

use diesel_dlt::cache::{
    CacheConfig, CachePolicy, LoadReport, TaskCache, TenantCacheMap, Topology,
};
use diesel_dlt::chunk::ChunkBuilderConfig;
use diesel_dlt::core::{ClientConfig, DieselClient, DieselServer};
use diesel_dlt::exec::{ExecConfig, WorkPool};
use diesel_dlt::kv::ShardedKv;
use diesel_dlt::store::{
    DelayedStore, DeviceModel, FaultConfig, FaultyStore, MemObjectStore, ObjectStore,
};
use diesel_dlt::train::loader::upload_samples;
use diesel_dlt::train::{DataLoader, SyntheticSpec};
use diesel_util::{MockClock, SystemClock};

const WORKER_GRID: [usize; 3] = [1, 2, 8];

fn pool(workers: usize) -> WorkPool {
    if workers <= 1 {
        WorkPool::inline("determinism")
    } else {
        WorkPool::new("determinism", ExecConfig { workers, queue_capacity: 0 })
    }
}

/// A server + loader stack over `store`, with `pool` wired through both
/// the server's request executor and the loader's read pipeline.
fn loader_over<S: ObjectStore + 'static>(
    store: Arc<S>,
    pool: WorkPool,
) -> DataLoader<ShardedKv, S> {
    let server =
        Arc::new(DieselServer::new(Arc::new(ShardedKv::new()), store).with_pool(pool.clone()));
    let client = DieselClient::connect_with(
        server,
        "synth",
        ClientConfig {
            chunk: ChunkBuilderConfig { target_chunk_size: 4096, ..Default::default() },
        },
    )
    .with_deterministic_identity(1, 1, 100);
    let samples = SyntheticSpec::cifar_like().generate(83);
    upload_samples(&client, &samples).unwrap();
    client.download_meta().unwrap();
    client.enable_shuffle(diesel_dlt::shuffle::ShuffleKind::ChunkWise { group_size: 2 });
    DataLoader::new(Arc::new(client), 8, 17).with_pool(pool).with_prefetch_depth(3)
}

/// Like [`loader_over`], but with a fully prefetched [`TaskCache`]
/// attached to the client — every epoch read below is a cache hit
/// served as a zero-copy `Bytes` view of the resident chunk.
fn cached_loader_over(pool: WorkPool) -> DataLoader<ShardedKv, MemObjectStore> {
    let store = Arc::new(MemObjectStore::new());
    let server =
        Arc::new(DieselServer::new(Arc::new(ShardedKv::new()), store).with_pool(pool.clone()));
    let client = DieselClient::connect_with(
        server.clone(),
        "synth",
        ClientConfig {
            chunk: ChunkBuilderConfig { target_chunk_size: 4096, ..Default::default() },
        },
    )
    .with_deterministic_identity(1, 1, 100);
    let samples = SyntheticSpec::cifar_like().generate(83);
    upload_samples(&client, &samples).unwrap();
    client.download_meta().unwrap();
    client.enable_shuffle(diesel_dlt::shuffle::ShuffleKind::ChunkWise { group_size: 2 });
    let chunks = server.meta().chunk_ids("synth").unwrap();
    let cache = Arc::new(
        TaskCache::new(
            Topology::uniform(1, 1).unwrap(),
            server.store().clone(),
            "synth",
            chunks,
            CacheConfig { capacity_bytes_per_node: 1 << 30, policy: CachePolicy::Oneshot },
        )
        .unwrap()
        .with_pool(pool.clone()),
    );
    cache.prefetch_all().unwrap();
    client.attach_cache(cache);
    DataLoader::new(Arc::new(client), 8, 17).with_pool(pool).with_prefetch_depth(3)
}

/// One epoch's observable output: per-batch `(labels, tensor bits)`.
type Fingerprint = Vec<(Vec<usize>, Vec<u32>)>;

fn epoch_fingerprint<S: ObjectStore + 'static>(
    loader: &DataLoader<ShardedKv, S>,
    epoch: u64,
) -> Fingerprint {
    loader
        .epoch_iter(epoch)
        .unwrap()
        .map(|b| {
            let (x, labels) = b.unwrap();
            (labels, x.data.iter().map(|f| f.to_bits()).collect())
        })
        .collect()
}

#[test]
fn epoch_batches_are_byte_identical_across_worker_counts() {
    let baseline = {
        let loader = loader_over(Arc::new(MemObjectStore::new()), pool(1));
        (0..3).map(|e| epoch_fingerprint(&loader, e)).collect::<Vec<_>>()
    };
    assert!(baseline[0].len() > 5, "expect a multi-batch epoch");
    for workers in WORKER_GRID {
        let loader = loader_over(Arc::new(MemObjectStore::new()), pool(workers));
        for (epoch, want) in baseline.iter().enumerate() {
            let got = epoch_fingerprint(&loader, epoch as u64);
            assert_eq!(&got, want, "epoch {epoch} diverges at workers={workers}");
        }
    }
}

#[test]
fn cache_hit_epoch_batches_are_byte_identical_across_worker_counts() {
    // The zero-copy cache path must be invisible to training: batches
    // decoded from `Bytes` views of resident chunks are byte-identical
    // to batches read through the server, at every worker count.
    let baseline = {
        let loader = loader_over(Arc::new(MemObjectStore::new()), pool(1));
        (0..2).map(|e| epoch_fingerprint(&loader, e)).collect::<Vec<_>>()
    };
    for workers in WORKER_GRID {
        let loader = cached_loader_over(pool(workers));
        for (epoch, want) in baseline.iter().enumerate() {
            let got = epoch_fingerprint(&loader, epoch as u64);
            assert_eq!(&got, want, "cached epoch {epoch} diverges at workers={workers}");
        }
    }
}

#[test]
fn epoch_batches_are_byte_identical_under_real_storage_delay() {
    // A wall-clock delay on every read perturbs thread interleaving as
    // hard as a real slow store would; the reorder buffer must still
    // deliver source order with identical bytes.
    let baseline = epoch_fingerprint(&loader_over(Arc::new(MemObjectStore::new()), pool(1)), 0);
    let model = DeviceModel {
        name: "determinism-delay",
        per_request_overhead: diesel_dlt::simnet::SimTime::from_micros(300),
        bytes_per_sec: 200.0e6,
        parallelism: 8,
    };
    for workers in WORKER_GRID {
        let delayed = Arc::new(DelayedStore::new(
            Arc::new(MemObjectStore::new()),
            model.clone(),
            Arc::new(SystemClock::new()),
        ));
        let got = epoch_fingerprint(&loader_over(delayed, pool(workers)), 0);
        assert_eq!(got, baseline, "delayed batches diverge at workers={workers}");
    }
}

/// One fully traced two-epoch run over a MockClock'd, single-worker
/// stack, exported as chrome-trace JSON.
fn traced_epochs_json() -> String {
    use diesel_dlt::obs::{chrome_trace_json, Registry, Tracer};
    let registry = Arc::new(Registry::new(Arc::new(MockClock::new())));
    let server = DieselServer::with_registry(
        Arc::new(ShardedKv::new()),
        Arc::new(MemObjectStore::new()),
        registry.clone(),
    )
    .with_pool(pool(1));
    // One always-on tracer across server, client, and loader, stamped
    // by the mock clock: ids, order, and timestamps are all replayable.
    let tracer = Tracer::enabled(&registry);
    let server = Arc::new(server.with_tracer(tracer.clone()));
    let client = DieselClient::connect_with(
        server,
        "synth",
        ClientConfig {
            chunk: ChunkBuilderConfig { target_chunk_size: 4096, ..Default::default() },
        },
    )
    .with_deterministic_identity(1, 1, 100)
    .with_tracer(tracer.clone());
    let samples = SyntheticSpec::cifar_like().generate(83);
    upload_samples(&client, &samples).unwrap();
    client.download_meta().unwrap();
    client.enable_shuffle(diesel_dlt::shuffle::ShuffleKind::ChunkWise { group_size: 2 });
    let loader = DataLoader::new(Arc::new(client), 8, 17)
        .with_pool(pool(1))
        .with_prefetch_depth(3)
        .with_tracer(tracer.clone());
    tracer.drain(); // trace only the epochs, not the upload
    for epoch in 0..2 {
        for batch in loader.epoch_iter(epoch).unwrap() {
            batch.unwrap();
        }
    }
    chrome_trace_json(&tracer.drain())
}

#[test]
fn traced_epochs_export_byte_identical_chrome_json() {
    // Tracing obeys the same contract as the data path: an identical
    // run replays to byte-identical export output.
    let a = traced_epochs_json();
    let b = traced_epochs_json();
    assert!(a.contains("client.get_many"), "epochs must produce client read spans");
    assert!(a.contains("server.handle"), "reads must reach the server");
    assert!(a.contains("loader.decode"), "pipeline stages must be traced");
    assert_eq!(a, b, "trace export diverges between identical runs");
}

/// Pack a dataset, then build a task cache over its chunks with the
/// given pool.
fn cache_over<S: ObjectStore + 'static>(
    store: Arc<S>,
    seed_store: &Arc<MemObjectStore>,
    pool: WorkPool,
) -> TaskCache<S> {
    let server = Arc::new(DieselServer::new(Arc::new(ShardedKv::new()), seed_store.clone()));
    let client = DieselClient::connect_with(
        server.clone(),
        "ds",
        ClientConfig {
            chunk: ChunkBuilderConfig { target_chunk_size: 4096, ..Default::default() },
        },
    )
    .with_deterministic_identity(1, 1, 300);
    for i in 0..60 {
        client.put(&format!("f{i:04}"), &[(i % 251) as u8; 256]).unwrap();
    }
    client.flush().unwrap();
    let chunks = server.meta().chunk_ids("ds").unwrap();
    TaskCache::new(
        Topology::uniform(2, 2).unwrap(),
        store,
        "ds",
        chunks,
        CacheConfig { capacity_bytes_per_node: 1 << 30, policy: CachePolicy::Oneshot },
    )
    .unwrap()
    .with_pool(pool)
}

#[test]
fn prefetch_reports_are_identical_across_worker_counts() {
    let mut reports: Vec<(LoadReport, LoadReport)> = Vec::new();
    for workers in WORKER_GRID {
        let store = Arc::new(MemObjectStore::new());
        let cache = cache_over(store.clone(), &store, pool(workers));
        // Recovery reload first (Fig. 11b is pooled too): node 0's
        // partition loads, then the full sweep fills in the rest —
        // revisiting node 0's chunks must hit, not re-load.
        let node0 = cache.recover_node(0).unwrap();
        assert!(node0.chunks_loaded > 0, "node 0 owns chunks");
        let rest = cache.prefetch_all().unwrap();
        assert_eq!(
            cache.metrics().chunk_loads(),
            node0.chunks_loaded + rest.chunks_loaded,
            "sweep must not re-load node 0's chunks at workers={workers}"
        );
        reports.push((node0, rest));
    }
    assert!(reports[0].1.chunks_loaded > 1, "expect a multi-chunk dataset");
    for (w, r) in WORKER_GRID.iter().zip(&reports) {
        assert_eq!(r, &reports[0], "LoadReport diverges at workers={w}");
    }
}

#[test]
fn total_backing_failure_is_reported_identically_for_any_worker_count() {
    // FaultyStore draws per-call from a seeded RNG, so *which* chunk
    // fails first is interleaving-dependent. With every read failing the
    // outcome is order-robust: prefetch errors and caches nothing,
    // identically for every worker count.
    for workers in WORKER_GRID {
        let seed_store = Arc::new(MemObjectStore::new());
        let faulty = Arc::new(FaultyStore::new(
            seed_store.clone(),
            FaultConfig { io_error_rate: 1.0, corruption_rate: 0.0, seed: 11 },
        ));
        let cache = cache_over(faulty, &seed_store, pool(workers));
        let err = cache.prefetch_all().unwrap_err();
        assert!(
            matches!(err, diesel_dlt::cache::CacheError::Backing(_)),
            "workers={workers}: {err}"
        );
        assert_eq!(cache.metrics().chunk_loads(), 0, "workers={workers}");
        assert_eq!(cache.metrics().bytes_loaded(), 0, "workers={workers}");
    }
}

/// Like [`cached_loader_over`], but on a `nodes`-wide cache and handing
/// back the cache so the test can resize it mid-epoch.
fn elastic_cached_stack(
    pool: WorkPool,
    nodes: usize,
) -> (DataLoader<ShardedKv, MemObjectStore>, Arc<TaskCache<MemObjectStore>>) {
    let store = Arc::new(MemObjectStore::new());
    let server =
        Arc::new(DieselServer::new(Arc::new(ShardedKv::new()), store).with_pool(pool.clone()));
    let client = DieselClient::connect_with(
        server.clone(),
        "synth",
        ClientConfig {
            chunk: ChunkBuilderConfig { target_chunk_size: 4096, ..Default::default() },
        },
    )
    .with_deterministic_identity(1, 1, 100);
    let samples = SyntheticSpec::cifar_like().generate(83);
    upload_samples(&client, &samples).unwrap();
    client.download_meta().unwrap();
    client.enable_shuffle(diesel_dlt::shuffle::ShuffleKind::ChunkWise { group_size: 2 });
    let chunks = server.meta().chunk_ids("synth").unwrap();
    let cache = Arc::new(
        TaskCache::new(
            Topology::uniform(nodes, 1).unwrap(),
            server.store().clone(),
            "synth",
            chunks,
            CacheConfig { capacity_bytes_per_node: 1 << 30, policy: CachePolicy::Oneshot },
        )
        .unwrap()
        .with_pool(pool.clone()),
    );
    cache.prefetch_all().unwrap();
    client.attach_cache(cache.clone());
    (DataLoader::new(Arc::new(client), 8, 17).with_pool(pool).with_prefetch_depth(3), cache)
}

/// Fingerprint one epoch, resizing the cache to `to` nodes right before
/// batch `resize_at` is pulled — membership swings while the loader's
/// prefetch pipeline is mid-flight.
fn epoch_fingerprint_with_resize(
    loader: &DataLoader<ShardedKv, MemObjectStore>,
    cache: &TaskCache<MemObjectStore>,
    epoch: u64,
    resize_at: usize,
    to: usize,
) -> (Fingerprint, diesel_dlt::cache::RebalanceReport) {
    let mut out = Vec::new();
    let mut report = None;
    for (i, b) in loader.epoch_iter(epoch).unwrap().enumerate() {
        if i == resize_at {
            report = Some(cache.resize(to).unwrap());
        }
        let (x, labels) = b.unwrap();
        out.push((labels, x.data.iter().map(|f| f.to_bits()).collect()));
    }
    (out, report.unwrap())
}

#[test]
fn mid_epoch_resize_keeps_batches_byte_identical() {
    // The elastic-membership scenario (DESIGN.md §13): a warm 4-node
    // cache grows to 8 in the middle of epoch 0 and shrinks back to 4 in
    // the middle of epoch 1 while training reads stream through it.
    // Placement is a performance concern only — every batch must equal
    // the static, server-served run bit-for-bit, at every worker count —
    // and a fully warm cluster must relocate peer-to-peer, never
    // re-reading the backing store.
    let baseline = {
        let loader = loader_over(Arc::new(MemObjectStore::new()), pool(1));
        (0..2).map(|e| epoch_fingerprint(&loader, e)).collect::<Vec<_>>()
    };
    assert!(baseline[0].len() > 5, "expect a multi-batch epoch");
    for workers in WORKER_GRID {
        let (loader, cache) = elastic_cached_stack(pool(workers), 4);
        let loads_before = cache.metrics().chunk_loads();

        let (got0, up) = epoch_fingerprint_with_resize(&loader, &cache, 0, 3, 8);
        assert_eq!(got0, baseline[0], "grow mid-epoch diverges at workers={workers}");
        assert!(up.chunks_moved > 0, "a doubling must move chunks");
        assert_eq!(
            up.peer_warm_hits, up.chunks_moved,
            "warm grow must be all peer handoffs at workers={workers}"
        );
        assert_eq!(up.store_fallbacks, 0);

        let (got1, down) = epoch_fingerprint_with_resize(&loader, &cache, 1, 3, 4);
        assert_eq!(got1, baseline[1], "shrink mid-epoch diverges at workers={workers}");
        assert_eq!(down.peer_warm_hits, down.chunks_moved);
        assert_eq!(down.chunks_moved, up.chunks_moved, "4→8→4 must undo exactly the grow moves");

        assert_eq!(cache.membership_epoch(), 2);
        assert_eq!(
            cache.metrics().chunk_loads(),
            loads_before,
            "rebalances must not touch the backing store on a warm cluster (workers={workers})"
        );
        assert!((cache.resident_fraction() - 1.0).abs() < 1e-9, "survivors hold everything");
    }
}

/// Loaders for tenants A and B plus tenant A's cache handle (the one
/// the test kills and recovers mid-epoch).
type TwoTenantStack = (
    DataLoader<ShardedKv, MemObjectStore>,
    DataLoader<ShardedKv, MemObjectStore>,
    Arc<diesel_dlt::cache::TaskCache<MemObjectStore>>,
);

/// Two tenants over one shared `TenantCacheMap` plane: independent
/// synthetic datasets, one loader each, both caches fully prefetched.
fn two_tenant_stack(pool: WorkPool) -> TwoTenantStack {
    let store = Arc::new(MemObjectStore::new());
    let server =
        Arc::new(DieselServer::new(Arc::new(ShardedKv::new()), store).with_pool(pool.clone()));
    let mut loaders = Vec::new();
    let tenants = TenantCacheMap::new(
        Topology::uniform(2, 2).unwrap(),
        server.store().clone(),
        1 << 30,
        CachePolicy::Oneshot,
    )
    .with_pool(pool.clone());
    for (idx, (ds, sample_seed)) in [("synth-a", 83usize), ("synth-b", 29)].into_iter().enumerate()
    {
        let client = DieselClient::connect_with(
            server.clone(),
            ds,
            ClientConfig {
                chunk: ChunkBuilderConfig { target_chunk_size: 4096, ..Default::default() },
            },
        )
        .with_deterministic_identity(
            idx as u64 + 1,
            idx as u32 + 1,
            100 * (idx as u32 + 1),
        );
        let samples = SyntheticSpec::cifar_like().generate(sample_seed);
        upload_samples(&client, &samples).unwrap();
        client.download_meta().unwrap();
        client.enable_shuffle(diesel_dlt::shuffle::ShuffleKind::ChunkWise { group_size: 2 });
        let chunks = server.meta().chunk_ids(ds).unwrap();
        let cache = tenants.register(ds, chunks, 1).unwrap();
        cache.prefetch_all().unwrap();
        client.attach_cache(cache);
        loaders.push(
            DataLoader::new(Arc::new(client), 8, 17).with_pool(pool.clone()).with_prefetch_depth(3),
        );
    }
    let cache_a = tenants.get("synth-a").unwrap();
    let loader_b = loaders.pop().unwrap();
    let loader_a = loaders.pop().unwrap();
    (loader_a, loader_b, cache_a)
}

#[test]
fn two_tenant_epochs_are_byte_identical_across_worker_counts() {
    // Tenant isolation × determinism: two tenants share one
    // `TenantCacheMap` plane; tenant A's cache nodes are killed and
    // recovered *while tenant B's epoch streams*. B's batches must equal
    // its workers=1 run bit-for-bit at every worker count — and A's too,
    // once its nodes are back.
    let (base_a, base_b) = {
        let (loader_a, loader_b, _) = two_tenant_stack(pool(1));
        (
            (0..2).map(|e| epoch_fingerprint(&loader_a, e)).collect::<Vec<_>>(),
            (0..2).map(|e| epoch_fingerprint(&loader_b, e)).collect::<Vec<_>>(),
        )
    };
    assert!(base_a[0].len() > 5, "expect a multi-batch epoch");
    assert_ne!(base_a[0], base_b[0], "tenants train on different data");
    for workers in WORKER_GRID {
        let (loader_a, loader_b, cache_a) = two_tenant_stack(pool(workers));
        // Epoch 0 for B, with tenant A churning mid-epoch.
        let mut got = Vec::new();
        for (i, b) in loader_b.epoch_iter(0).unwrap().enumerate() {
            if i == 2 {
                cache_a.kill_node(0);
            }
            if i == 4 {
                cache_a.recover_node(0).unwrap();
            }
            let (x, labels) = b.unwrap();
            got.push((labels, x.data.iter().map(|f| f.to_bits()).collect::<Vec<u32>>()));
        }
        assert_eq!(got, base_b[0], "B's epoch 0 diverges under A churn at workers={workers}");
        assert_eq!(
            epoch_fingerprint(&loader_b, 1),
            base_b[1],
            "B's epoch 1 diverges at workers={workers}"
        );
        for (e, want) in base_a.iter().enumerate() {
            let got = epoch_fingerprint(&loader_a, e as u64);
            assert_eq!(&got, want, "A's epoch {e} diverges at workers={workers}");
        }
    }
}

#[test]
fn background_prefetch_joins_to_the_same_report() {
    let foreground = {
        let store = Arc::new(MemObjectStore::new());
        cache_over(store.clone(), &store, pool(1)).prefetch_all().unwrap()
    };
    for workers in WORKER_GRID {
        let store = Arc::new(MemObjectStore::new());
        let cache = Arc::new(cache_over(store.clone(), &store, pool(workers)));
        let report = cache.prefetch_background().join().unwrap();
        assert_eq!(report, foreground, "background sweep diverges at workers={workers}");
    }
}
