//! `DL_purge` reclaims storage: deleted files become deletion-bitmap
//! holes, and purging compacts or removes the chunk objects on disk
//! while preserving every surviving file byte-for-byte — including
//! across a full metadata recovery from the purged chunks.

use std::sync::Arc;

use diesel_dlt::chunk::ChunkBuilderConfig;
use diesel_dlt::core::{ClientConfig, DieselClient, DieselServer};
use diesel_dlt::kv::ShardedKv;
use diesel_dlt::store::{DirObjectStore, ObjectStore};

type Server = DieselServer<ShardedKv, DirObjectStore>;

fn stored_bytes(store: &DirObjectStore) -> u64 {
    store.list_prefix("ds/").iter().map(|k| store.get(k).unwrap().len() as u64).sum()
}

#[test]
fn purge_after_delete_reclaims_space_and_preserves_survivors() {
    let root = std::env::temp_dir().join(format!("diesel-purge-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let store = Arc::new(DirObjectStore::open(&root).unwrap());
    let server: Arc<Server> =
        Arc::new(DieselServer::new(Arc::new(ShardedKv::new()), store.clone()));

    let client = DieselClient::connect_with(
        server.clone(),
        "ds",
        ClientConfig {
            chunk: ChunkBuilderConfig { target_chunk_size: 4096, ..Default::default() },
        },
    )
    .with_deterministic_identity(1, 1, 500);

    let mut files = Vec::new();
    for i in 0..80usize {
        let name = format!("c{}/f{i:03}", i % 4);
        let data: Vec<u8> = (0..(64 + i)).map(|j| ((i * 13 + j) % 256) as u8).collect();
        client.put(&name, &data).unwrap();
        files.push((name, data));
    }
    client.flush().unwrap();

    let keys_before = store.list_prefix("ds/").len();
    let bytes_before = stored_bytes(&store);
    assert!(keys_before > 1, "expected multiple chunk objects, got {keys_before}");

    // Delete one class of files (a quarter of the dataset), punching
    // holes across every chunk.
    let (deleted, kept): (Vec<_>, Vec<_>) =
        files.into_iter().partition(|(name, _)| name.starts_with("c0/"));
    let mut deleted_bytes = 0u64;
    for (name, data) in &deleted {
        server.delete_file("ds", name, 1_000_000_000).unwrap();
        deleted_bytes += data.len() as u64;
    }
    // Deletion alone reclaims nothing — the bytes sit in bitmap holes.
    assert_eq!(stored_bytes(&store), bytes_before);

    let report = server.purge_dataset("ds", 1_000_000_001).unwrap();
    assert_eq!(report.bytes_reclaimed, deleted_bytes);
    assert!(
        report.chunks_compacted + report.chunks_removed > 0,
        "purge must rewrite or drop chunks: {report:?}"
    );

    // The chunk objects on disk actually shrank by at least the deleted
    // payload (headers shrink too, so strictly more is fine).
    let bytes_after = stored_bytes(&store);
    assert!(
        bytes_before - bytes_after >= deleted_bytes,
        "stored bytes {bytes_before} -> {bytes_after}, expected ≥ {deleted_bytes} reclaimed"
    );

    // Survivors read back byte-for-byte; deleted files stay gone.
    let reader = DieselClient::connect(server.clone(), "ds");
    reader.download_meta().unwrap();
    for (name, data) in &kept {
        assert_eq!(reader.get(name).unwrap().as_ref(), &data[..], "{name}");
    }
    for (name, _) in &deleted {
        assert!(reader.get(name).is_err(), "{name} should be gone");
    }

    // The purged chunks are still self-contained: a cold server can
    // rebuild all metadata from them and serve the survivors.
    drop((client, reader, server));
    let store2 = Arc::new(DirObjectStore::open(&root).unwrap());
    let recovered: Arc<Server> = Arc::new(DieselServer::new(Arc::new(ShardedKv::new()), store2));
    recovered.recover_metadata_full("ds").unwrap();
    let reader = DieselClient::connect(recovered, "ds");
    reader.download_meta().unwrap();
    assert_eq!(reader.file_list().unwrap().len(), kept.len());
    for (name, data) in &kept {
        assert_eq!(reader.get(name).unwrap().as_ref(), &data[..], "recovered {name}");
    }

    let _ = std::fs::remove_dir_all(&root);
}
