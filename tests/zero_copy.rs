//! The payload plane's asserted invariant (DESIGN.md §11): a cache-hit
//! read performs **zero** payload memcpy. Every deliberate copy in the
//! workspace is ledgered under `bytes.copied{site=…}` (ingest, seal,
//! corruption, delete_rewrite, decode), so "no copies on the read path"
//! is checkable as "the ledger total does not move across a traced
//! cache-hit epoch of reads".
//!
//! This lives in its own integration-test binary on purpose: the copies
//! ledger is process-global, and unit tests elsewhere (builder, server,
//! loader) exercise copying sites concurrently within their own
//! processes. Here the only traffic is ours — and it is one `#[test]`
//! with sequential phases, because cargo runs sibling tests as threads
//! of this same process and concurrent uploads would move the ledger
//! under the zero-delta assert.

use std::sync::Arc;

use diesel_dlt::cache::{CacheConfig, CachePolicy, TaskCache, Topology};
use diesel_dlt::chunk::ChunkBuilderConfig;
use diesel_dlt::core::{ClientConfig, DieselClient, DieselServer};
use diesel_dlt::kv::ShardedKv;
use diesel_dlt::obs::{copied_at, copied_total, Tracer};
use diesel_dlt::store::MemObjectStore;
use diesel_dlt::train::loader::upload_samples;
use diesel_dlt::train::{DataLoader, SyntheticSpec};

type Stack =
    (Arc<DieselServer<ShardedKv, MemObjectStore>>, DieselClient<ShardedKv, MemObjectStore>);

/// Server + client with a synthetic dataset uploaded (this part copies:
/// ingest and seal are ledgered sites — all before the measured region).
fn stack() -> Stack {
    let server =
        Arc::new(DieselServer::new(Arc::new(ShardedKv::new()), Arc::new(MemObjectStore::new())));
    let client = DieselClient::connect_with(
        server.clone(),
        "synth",
        ClientConfig {
            chunk: ChunkBuilderConfig { target_chunk_size: 1 << 16, ..Default::default() },
        },
    )
    .with_deterministic_identity(1, 1, 100);
    let samples = SyntheticSpec::cifar_like().generate(96);
    upload_samples(&client, &samples).expect("upload");
    client.download_meta().expect("meta");
    (server, client)
}

fn prefetched_cache(
    server: &Arc<DieselServer<ShardedKv, MemObjectStore>>,
) -> Arc<TaskCache<MemObjectStore>> {
    let chunks = server.meta().chunk_ids("synth").expect("chunks");
    let cache = Arc::new(
        TaskCache::new(
            Topology::uniform(1, 1).unwrap(),
            server.store().clone(),
            "synth",
            chunks,
            CacheConfig { capacity_bytes_per_node: 1 << 30, policy: CachePolicy::Oneshot },
        )
        .unwrap(),
    );
    cache.prefetch_all().expect("prefetch");
    cache
}

#[test]
fn payload_plane_ledger_holds_its_invariants() {
    // Phase 1 — the write path is ledgered: building + sealing chunks
    // records ingest and seal copies.
    let before_ingest = copied_at("ingest");
    let before_seal = copied_at("seal");
    let (server, client) = stack();
    assert!(copied_at("ingest") > before_ingest, "chunk building must ledger ingest copies");
    assert!(copied_at("seal") > before_seal, "chunk sealing must ledger seal copies");

    // Phase 2 — THE invariant: a traced cache-hit read epoch copies
    // zero payload bytes. The cache is fully prefetched, so every read
    // below is a hit.
    let cache = prefetched_cache(&server);
    client.attach_cache(cache.clone());
    let tracer = Tracer::enabled(server.registry());
    let client = client.with_tracer(tracer.clone());
    let paths = client.file_list().expect("file list");
    assert!(!paths.is_empty());

    let before = copied_total();
    let mut total_bytes = 0usize;
    for path in &paths {
        let data = client.get(path).expect("cache-hit read");
        assert!(!data.is_empty());
        total_bytes += data.len();
    }
    let delta = copied_total() - before;
    assert_eq!(
        delta,
        0,
        "a traced cache-hit read epoch ({} files, {total_bytes} payload bytes) \
         must not memcpy payload, but bytes.copied grew by {delta}",
        paths.len()
    );

    // The reads really were hits and really were traced.
    let spans = tracer.drain();
    let hits = spans
        .iter()
        .filter(|s| {
            s.name == "cache.get" && s.labels.iter().any(|(k, v)| k == "outcome" && v == "hit")
        })
        .count();
    assert!(hits > 0, "expected traced cache.get hit spans, got none in {} spans", spans.len());

    // The payloads are true views: two reads of the same file alias one
    // allocation (the resident chunk's buffer), they don't copy it.
    let a = client.get(&paths[0]).expect("read");
    let b = client.get(&paths[0]).expect("re-read");
    assert!(
        a.shares_allocation(&b),
        "repeated cache-hit reads must alias the resident chunk, not copy"
    );

    // Phase 3 — a training epoch *does* copy, exactly at the
    // decode-into-tensor boundary, and the ledger says so.
    client.enable_shuffle(diesel_dlt::shuffle::ShuffleKind::ChunkWise { group_size: 2 });
    let loader = DataLoader::new(Arc::new(client), 16, 61);
    let before_decode = copied_at("decode");
    for batch in loader.epoch_iter(0).expect("epoch") {
        batch.expect("batch");
    }
    assert!(copied_at("decode") > before_decode, "loader epoch must ledger its decode copies");
}
