//! Concurrency stress: many real threads writing, reading, deleting and
//! snapshotting against one server simultaneously. The invariants under
//! test: no lost files, no torn reads (every read returns either the
//! exact written bytes or a clean not-found), and consistent dataset
//! counters afterwards.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use diesel_dlt::chunk::ChunkBuilderConfig;
use diesel_dlt::core::{ClientConfig, DieselClient, DieselServer, ServerPool};
use diesel_dlt::kv::{ClusterConfig, KvCluster, ShardedKv};
use diesel_dlt::store::MemObjectStore;

fn content_for(writer: usize, i: usize) -> Vec<u8> {
    let len = 50 + (writer * 31 + i * 7) % 300;
    (0..len).map(|j| ((writer * 131 + i * 17 + j) % 256) as u8).collect()
}

#[test]
fn parallel_writers_then_parallel_readers() {
    let kv = Arc::new(KvCluster::new(ClusterConfig { instances: 8, shards_per_instance: 16 }));
    let store = Arc::new(MemObjectStore::new());
    let pool = Arc::new(ServerPool::deploy(3, kv, store));

    const WRITERS: usize = 6;
    const FILES_EACH: usize = 150;

    let writers: Vec<_> = (0..WRITERS)
        .map(|w| {
            let pool = pool.clone();
            std::thread::spawn(move || {
                let c = DieselClient::connect_with(
                    pool.assign(),
                    "stress",
                    ClientConfig {
                        chunk: ChunkBuilderConfig { target_chunk_size: 4096, ..Default::default() },
                    },
                );
                for i in 0..FILES_EACH {
                    c.put(&format!("w{w}/f{i:04}"), &content_for(w, i)).unwrap();
                }
                c.flush().unwrap();
            })
        })
        .collect();
    for t in writers {
        t.join().unwrap();
    }

    // Every server in the pool sees the complete dataset.
    let rec = pool.server(0).meta().dataset_record("stress").unwrap();
    assert_eq!(rec.file_count as usize, WRITERS * FILES_EACH);

    // Parallel readers over parallel snapshot downloads.
    let readers: Vec<_> = (0..8)
        .map(|r| {
            let pool = pool.clone();
            std::thread::spawn(move || {
                let c = DieselClient::connect(pool.assign(), "stress");
                c.download_meta().unwrap();
                for w in 0..WRITERS {
                    for i in (r % 3..FILES_EACH).step_by(3) {
                        let got = c.get(&format!("w{w}/f{i:04}")).unwrap();
                        assert_eq!(got.as_ref(), &content_for(w, i)[..], "w{w}/f{i:04}");
                    }
                }
            })
        })
        .collect();
    for t in readers {
        t.join().unwrap();
    }
}

#[test]
fn readers_race_deleters_without_torn_results() {
    let server =
        Arc::new(DieselServer::new(Arc::new(ShardedKv::new()), Arc::new(MemObjectStore::new())));
    let writer = DieselClient::connect_with(
        server.clone(),
        "race",
        ClientConfig {
            chunk: ChunkBuilderConfig { target_chunk_size: 4096, ..Default::default() },
        },
    );
    const FILES: usize = 400;
    for i in 0..FILES {
        writer.put(&format!("f{i:04}"), &content_for(0, i)).unwrap();
    }
    writer.flush().unwrap();

    let stop = Arc::new(AtomicBool::new(false));
    // Deleter removes every 4th file while readers hammer everything.
    let deleter = {
        let server = server.clone();
        let stop = stop.clone();
        std::thread::spawn(move || {
            for i in (0..FILES).step_by(4) {
                server.delete_file("race", &format!("f{i:04}"), 9_000_000 + i as u64).unwrap();
            }
            stop.store(true, Ordering::Release);
        })
    };
    let readers: Vec<_> = (0..4)
        .map(|r| {
            let server = server.clone();
            let stop = stop.clone();
            std::thread::spawn(move || {
                let mut rounds = 0usize;
                while !stop.load(Ordering::Acquire) || rounds == 0 {
                    for i in (r..FILES).step_by(5) {
                        match server.read_file("race", &format!("f{i:04}")) {
                            // Either the exact bytes…
                            Ok(data) => assert_eq!(
                                data.as_ref(),
                                &content_for(0, i)[..],
                                "torn read of f{i:04}"
                            ),
                            // …or a clean metadata/deleted error.
                            Err(e) => {
                                let msg = e.to_string();
                                assert!(
                                    msg.contains("no such file") || msg.contains("deleted"),
                                    "unexpected error for f{i:04}: {msg}"
                                );
                            }
                        }
                    }
                    rounds += 1;
                }
            })
        })
        .collect();
    deleter.join().unwrap();
    for t in readers {
        t.join().unwrap();
    }

    // Post-conditions: exactly the undeleted files remain.
    let rec = server.meta().dataset_record("race").unwrap();
    assert_eq!(rec.file_count as usize, FILES - FILES.div_ceil(4));
    for i in 0..FILES {
        let res = server.read_file("race", &format!("f{i:04}"));
        if i % 4 == 0 {
            assert!(res.is_err());
        } else {
            assert!(res.is_ok(), "f{i:04} lost");
        }
    }
}

#[test]
fn snapshot_downloads_race_ingest_safely() {
    // Snapshots taken while writes are in flight must be internally
    // consistent: every file they list must be readable at the listed
    // location, even if the snapshot is already stale.
    let server =
        Arc::new(DieselServer::new(Arc::new(ShardedKv::new()), Arc::new(MemObjectStore::new())));
    let stop = Arc::new(AtomicBool::new(false));
    let ingester = {
        let server = server.clone();
        let stop = stop.clone();
        std::thread::spawn(move || {
            let c = DieselClient::connect_with(
                server,
                "live",
                ClientConfig {
                    chunk: ChunkBuilderConfig { target_chunk_size: 2048, ..Default::default() },
                },
            );
            for i in 0..600 {
                c.put(&format!("f{i:04}"), &content_for(1, i)).unwrap();
                if i % 50 == 49 {
                    c.flush().unwrap();
                }
            }
            c.flush().unwrap();
            stop.store(true, Ordering::Release);
        })
    };
    let snapshotter = {
        let server = server.clone();
        let stop = stop.clone();
        std::thread::spawn(move || {
            let mut taken = 0;
            while !stop.load(Ordering::Acquire) {
                if let Ok(snap) = server.build_snapshot("live") {
                    for f in snap.files.iter().step_by(7) {
                        let data = server.read_by_meta("live", &f.meta).unwrap();
                        let i: usize = f.path[1..].parse().unwrap();
                        assert_eq!(data.as_ref(), &content_for(1, i)[..], "{}", f.path);
                    }
                    taken += 1;
                }
            }
            taken
        })
    };
    ingester.join().unwrap();
    let taken = snapshotter.join().unwrap();
    assert!(taken > 0, "snapshotter should have raced at least once");
    let final_snap = server.build_snapshot("live").unwrap();
    assert_eq!(final_snap.files.len(), 600);
}
