//! Deadlock-freedom as an enforced invariant: the lock-order witness
//! (`diesel_util::lockdep`) reports an ABBA inversion constructed
//! across two real threads *before* any deadlock can fire — no
//! contention, no timeout — and the report lands in the diesel-obs
//! ledger as `lockdep.cycle{a=…,b=…}`.

use std::sync::{mpsc, Arc};
use std::thread;

use diesel_util::lockdep::{self, Mode};
use diesel_util::Mutex;

/// Two threads acquire two named locks in opposite orders. The
/// schedule is serialized (thread 2 only starts its inverted pair
/// after thread 1 released everything), so the deadlock interleaving
/// never happens — and the witness still reports the cycle, because it
/// checks the *order graph*, not the blocked-thread state.
#[test]
fn abba_across_two_threads_is_reported_before_any_deadlock() {
    diesel_obs::lockdep::install();
    let a = Arc::new(Mutex::named("abba.a", 0u32));
    let b = Arc::new(Mutex::named("abba.b", 0u32));

    // Thread 1: A → B, putting the edge a→b in the order graph.
    {
        let (a, b) = (Arc::clone(&a), Arc::clone(&b));
        thread::spawn(move || {
            let ga = a.lock();
            let gb = b.lock();
            drop((ga, gb));
        })
        .join()
        .expect("thread 1 held no inverted order");
    }

    let before = lockdep::cycles_between("abba.b", "abba.a");
    let obs_before = diesel_obs::cycles_reported("abba.b", "abba.a");

    // Thread 2: B → A. The acquisition of A closes the cycle; the
    // witness reports at that point and (in warn mode) the thread
    // keeps running to completion — nothing ever blocks, so there is
    // no deadlock for a test timeout to catch.
    let (tx, rx) = mpsc::channel();
    {
        let (a, b) = (Arc::clone(&a), Arc::clone(&b));
        thread::spawn(move || {
            lockdep::set_thread_mode(Some(Mode::Warn));
            let gb = b.lock();
            let ga = a.lock(); // ← cycle detected here, before blocking
            tx.send(lockdep::cycles_between("abba.b", "abba.a")).ok();
            drop((ga, gb));
        })
        .join()
        .expect("warn mode reports and continues");
    }

    // Reported from inside thread 2 while it still held both locks.
    let reported_while_held = rx.recv().expect("thread 2 sent its observation");
    assert_eq!(reported_while_held, before + 1, "cycle reported before thread 2 finished");

    // The report names both classes and both acquisition sites in this
    // file (the named-lock wrappers are #[track_caller]).
    let r = lockdep::cycles()
        .into_iter()
        .rev()
        .find(|r| r.a == "abba.b" && r.b == "abba.a")
        .expect("cycle report recorded");
    assert!(r.acquire_site.contains("lockdep.rs"), "site = {}", r.acquire_site);
    assert!(r.held_site.contains("lockdep.rs"), "site = {}", r.held_site);
    assert_eq!(r.path.first().map(String::as_str), Some("abba.a"));

    // And the obs bridge carried it into the process-global ledger.
    assert_eq!(diesel_obs::cycles_reported("abba.b", "abba.a"), obs_before + 1);
    let snap = diesel_obs::lockdep_snapshot();
    let hit = snap.events.iter().any(|e| {
        e.scope == diesel_obs::LOCKDEP_EVENT
            && e.kv.contains(&("a".to_owned(), "abba.b".to_owned()))
            && e.kv.contains(&("b".to_owned(), "abba.a".to_owned()))
    });
    assert!(hit, "lockdep.cycle event missing: {:?}", snap.events);
}

/// Under `fail` mode the inverted acquisition panics *instead of*
/// taking the lock: the would-be deadlock becomes a deterministic,
/// attributable thread death. (Thread-scoped mode, so the rest of the
/// suite is untouched.)
#[test]
fn fail_mode_turns_the_inversion_into_a_panic_not_a_hang() {
    let a = Arc::new(Mutex::named("abba-fail.a", ()));
    let b = Arc::new(Mutex::named("abba-fail.b", ()));

    {
        let (a, b) = (Arc::clone(&a), Arc::clone(&b));
        thread::spawn(move || {
            let ga = a.lock();
            let gb = b.lock();
            drop((ga, gb));
        })
        .join()
        .expect("consistent order");
    }

    let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
    let died = thread::spawn(move || {
        lockdep::set_thread_mode(Some(Mode::Fail));
        let _gb = b2.lock();
        let _ga = a2.lock(); // panics deterministically
    })
    .join();
    assert!(died.is_err(), "fail mode must panic on the inversion");

    // The check runs *before* the real lock is touched: `a` was never
    // acquired by the failing thread, `b` was released during unwind,
    // so both locks are immediately usable from this thread.
    drop(a.lock());
    drop(b.lock());
}
