//! End-to-end corruption and transient-fault handling: DIESEL's
//! self-contained chunks carry per-file CRC32s and a header CRC, so
//! storage-layer bit rot is *detected*, never silently returned, and
//! transient I/O errors surface as retriable failures.

use std::sync::Arc;

use diesel_dlt::cache::{CacheConfig, CachePolicy, TaskCache, Topology};
use diesel_dlt::chunk::ChunkBuilderConfig;
use diesel_dlt::core::{ClientConfig, DieselClient, DieselServer};
use diesel_dlt::kv::ShardedKv;
use diesel_dlt::store::{FaultConfig, FaultyStore, MemObjectStore, ObjectStore};

type Server = DieselServer<ShardedKv, MemObjectStore>;

fn populated_server(files: usize) -> (Arc<Server>, Vec<String>) {
    let server =
        Arc::new(DieselServer::new(Arc::new(ShardedKv::new()), Arc::new(MemObjectStore::new())));
    let client = DieselClient::connect_with(
        server.clone(),
        "ds",
        ClientConfig {
            chunk: ChunkBuilderConfig { target_chunk_size: 4096, ..Default::default() },
        },
    )
    .with_deterministic_identity(1, 1, 300);
    let mut names = Vec::new();
    for i in 0..files {
        let name = format!("f{i:04}");
        client.put(&name, &[(i % 251) as u8; 256]).unwrap();
        names.push(name);
    }
    client.flush().unwrap();
    (server, names)
}

#[test]
fn cache_verify_on_load_catches_bit_rot() {
    let (server, _) = populated_server(60);
    let chunks = server.meta().chunk_ids("ds").unwrap();
    // A backing store that corrupts every read.
    let faulty = Arc::new(FaultyStore::new(
        server.store().clone(),
        FaultConfig { io_error_rate: 0.0, corruption_rate: 1.0, seed: 7 },
    ));
    let cache = TaskCache::new(
        Topology::uniform(2, 2).unwrap(),
        faulty,
        "ds",
        chunks,
        CacheConfig { capacity_bytes_per_node: 1 << 30, policy: CachePolicy::Oneshot },
    )
    .unwrap();
    cache.set_verify_on_load(true);
    // Every chunk load must detect the flip — either the header CRC or
    // a per-file CRC fires; no corrupt payload is ever cached.
    let err = cache.prefetch_all().unwrap_err();
    assert!(matches!(err, diesel_dlt::cache::CacheError::Corrupt(_)), "{err}");
    assert_eq!(cache.metrics().chunk_loads(), 0, "corrupt chunk must not be cached");
}

#[test]
fn clean_store_passes_verify_on_load() {
    let (server, names) = populated_server(60);
    let chunks = server.meta().chunk_ids("ds").unwrap();
    let cache = TaskCache::new(
        Topology::uniform(2, 2).unwrap(),
        server.store().clone(),
        "ds",
        chunks.clone(),
        CacheConfig { capacity_bytes_per_node: 1 << 30, policy: CachePolicy::Oneshot },
    )
    .unwrap();
    cache.set_verify_on_load(true);
    let report = cache.prefetch_all().unwrap();
    assert_eq!(report.chunks_loaded as usize, chunks.len());
    let snap = server.build_snapshot("ds").unwrap();
    for f in &snap.files {
        assert_eq!(cache.get_file(&f.meta).unwrap().data.len(), 256);
    }
    let _ = names;
}

#[test]
fn transient_errors_fail_retriably_and_eventually_succeed() {
    let (server, _) = populated_server(40);
    let chunks = server.meta().chunk_ids("ds").unwrap();
    let faulty = Arc::new(FaultyStore::new(
        server.store().clone(),
        FaultConfig { io_error_rate: 0.5, corruption_rate: 0.0, seed: 3 },
    ));
    let cache = TaskCache::new(
        Topology::uniform(2, 2).unwrap(),
        faulty.clone(),
        "ds",
        chunks.clone(),
        CacheConfig { capacity_bytes_per_node: 1 << 30, policy: CachePolicy::Oneshot },
    )
    .unwrap();
    // Retry the prefetch until the flaky store lets every chunk through.
    let mut attempts = 0;
    loop {
        attempts += 1;
        match cache.prefetch_all() {
            Ok(_) => break,
            Err(diesel_dlt::cache::CacheError::Backing(_)) if attempts < 100 => continue,
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
    assert!((cache.resident_fraction() - 1.0).abs() < 1e-9);
    let (errors, _) = faulty.injected();
    assert!(errors > 0, "the store really was flaky");
    // Once cached, reads no longer touch the flaky store at all.
    let snap = server.build_snapshot("ds").unwrap();
    for f in &snap.files {
        assert!(cache.get_file(&f.meta).unwrap().chunk_hit);
    }
}

#[test]
fn recovery_scan_detects_corrupt_headers() {
    let (server, _) = populated_server(30);
    // Corrupt one stored chunk's header region in place.
    let keys = server.store().list_prefix("ds/");
    let victim = &keys[0];
    let mut bytes = server.store().get(victim).unwrap().to_vec();
    bytes[20] ^= 0xff; // inside the chunk-id field, breaking the header CRC
    server.store().put(victim, bytes.into()).unwrap();

    server.meta().kv().clear();
    let err = server.recover_metadata_full("ds").unwrap_err();
    assert!(
        matches!(err, diesel_dlt::core::DieselError::Meta(diesel_dlt::meta::MetaError::Chunk(_))),
        "corrupt header must abort recovery loudly, got {err}"
    );
}
