//! Quickstart: deploy DIESEL, import a directory with DLCMD, read it
//! back through the libDIESEL API and the FUSE facade.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use std::sync::Arc;

use diesel_dlt::core::dlcmd;
use diesel_dlt::core::{DieselClient, DieselServer, FuseConfig, FuseMount};
use diesel_dlt::kv::ShardedKv;
use diesel_dlt::store::MemObjectStore;

fn main() {
    // 1. Stage a small dataset on local disk (what a user would have
    //    downloaded or collected).
    let staging = std::env::temp_dir().join(format!("diesel-quickstart-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&staging);
    for class in ["cat", "dog", "fox"] {
        let dir = staging.join("train").join(class);
        std::fs::create_dir_all(&dir).unwrap();
        for i in 0..40 {
            let body: Vec<u8> = format!("{class}-image-{i}").into_bytes().repeat(200);
            std::fs::write(dir.join(format!("img{i:03}.jpg")), body).unwrap();
        }
    }
    println!("staged 120 files under {}", staging.display());

    // 2. Deploy the DIESEL server over a KV metadata store and an object
    //    store (in production: Redis cluster + Ceph/Lustre; here the
    //    in-memory substrates).
    let server =
        Arc::new(DieselServer::new(Arc::new(ShardedKv::new()), Arc::new(MemObjectStore::new())));

    // 3. DLCMD: import the directory (files are packed into >=4 MB
    //    chunks client-side — 120 small files become a couple of chunk
    //    objects, not 120 object-store writes).
    let client = DieselClient::connect(server.clone(), "pets");
    let report = dlcmd::import_directory(&client, &staging).unwrap();
    let (chunks, files, bytes) = dlcmd::usage(&server, "pets").unwrap();
    println!(
        "imported {} files / {} bytes into {chunks} chunk(s) ({files} files registered)",
        report.files, report.bytes
    );
    assert_eq!(report.files, files);
    assert_eq!(report.bytes, bytes);

    // 4. Download the metadata snapshot: every stat/ls afterwards is a
    //    local O(1) lookup — no metadata server on the read path.
    client.download_meta().unwrap();
    let classes = client.ls("train").unwrap();
    println!(
        "train/ contains {} classes: {:?}",
        classes.len(),
        classes.iter().map(|e| e.name.as_str()).collect::<Vec<_>>()
    );
    let meta = client.stat("train/cat/img007.jpg").unwrap();
    println!(
        "stat train/cat/img007.jpg -> {} bytes in chunk {} at offset {}",
        meta.length, meta.chunk, meta.offset
    );

    // 5. Read through the API...
    let body = client.get("train/dog/img000.jpg").unwrap();
    assert!(body.starts_with(b"dog-image-0"));

    // ...and through the FUSE facade, the way PyTorch/TensorFlow would.
    let fuse = FuseMount::mount(
        Arc::new(DieselClient::connect(server.clone(), "pets")),
        FuseConfig::default(),
    );
    fuse.client().download_meta().unwrap();
    let fd = fuse.open("train/fox/img039.jpg").unwrap();
    let first = fuse.read(fd, 0, 13).unwrap();
    println!("FUSE read: {:?}...", std::str::from_utf8(&first).unwrap());
    fuse.close(fd).unwrap();

    // 6. Housekeeping: delete a file, purge the hole, verify space
    //    reclaimed.
    let before = server.store().iter_total();
    client.delete("train/cat/img000.jpg").unwrap();
    let purge = server.purge_dataset("pets", 1).unwrap();
    let after = server.store().iter_total();
    println!(
        "deleted 1 file; purge compacted {} chunk(s), reclaimed {} bytes ({} -> {} stored bytes)",
        purge.chunks_compacted, purge.bytes_reclaimed, before, after
    );

    let _ = std::fs::remove_dir_all(&staging);
    println!("quickstart OK");
}

/// Tiny extension trait so the example can print stored bytes tersely.
trait TotalBytes {
    fn iter_total(&self) -> u64;
}
impl TotalBytes for Arc<MemObjectStore> {
    fn iter_total(&self) -> u64 {
        use diesel_dlt::store::ObjectStore;
        self.total_bytes()
    }
}
