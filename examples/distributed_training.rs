//! Distributed training end-to-end: a synthetic classification dataset
//! stored in DIESEL, cached by a 4-node task-grained distributed cache,
//! read in chunk-wise shuffled order, feeding a real SGD trainer.
//!
//! ```text
//! cargo run --release --example distributed_training
//! ```

use std::sync::Arc;

use diesel_dlt::cache::{CacheConfig, CachePolicy, TaskCache, Topology};
use diesel_dlt::core::{ClientConfig, DieselClient, DieselServer};
use diesel_dlt::kv::ShardedKv;
use diesel_dlt::shuffle::ShuffleKind;
use diesel_dlt::store::MemObjectStore;
use diesel_dlt::train::loader::upload_samples;
use diesel_dlt::train::{train, DataLoader, Mlp, MlpConfig, SyntheticSpec, TrainConfig};

fn main() {
    // Dataset: 4000 training samples, 20 classes (an "ImageNet-like"
    // miniature; see DESIGN.md for the substitution rationale).
    let spec = SyntheticSpec::imagenet_like();
    let train_set = spec.generate(4000);
    let eval_set = spec.generate_eval(800);

    let server =
        Arc::new(DieselServer::new(Arc::new(ShardedKv::new()), Arc::new(MemObjectStore::new())));
    let client = DieselClient::connect_with(
        server.clone(),
        "synth-imagenet",
        ClientConfig {
            chunk: diesel_dlt::chunk::ChunkBuilderConfig {
                target_chunk_size: 32 << 10, // small chunks so the demo has many
                ..Default::default()
            },
        },
    );
    upload_samples(&client, &train_set).unwrap();
    client.download_meta().unwrap();

    // Task-grained distributed cache over 4 "nodes" with 4 I/O workers
    // each: topology gives p*(n-1) connections instead of a full mesh.
    let chunks = server.meta().chunk_ids("synth-imagenet").unwrap();
    let topology = Topology::uniform(4, 4).unwrap();
    println!(
        "topology: {} clients on {} nodes -> {} connections (full mesh would need {})",
        topology.client_count(),
        topology.node_count(),
        topology.diesel_connection_count(),
        topology.full_mesh_connection_count()
    );
    let cache = Arc::new(
        TaskCache::new(
            topology,
            server.store().clone(),
            "synth-imagenet",
            chunks.clone(),
            CacheConfig { capacity_bytes_per_node: 64 << 20, policy: CachePolicy::Oneshot },
        )
        .unwrap(),
    );
    let loaded = cache.prefetch_all().unwrap();
    println!(
        "oneshot prefetch: {} chunks / {} KiB loaded chunk-wise from the object store",
        loaded.chunks_loaded,
        loaded.bytes_loaded >> 10
    );
    client.attach_cache(cache.clone());

    // Chunk-wise shuffle: random-enough order, chunk-local reads.
    client.enable_shuffle(ShuffleKind::ChunkWise { group_size: 8 });
    let plan = client.epoch_plan(1234, 0).unwrap();
    println!(
        "epoch plan: {} files in {} groups; peak working set {} KiB (dataset {} KiB)",
        plan.len(),
        plan.group_starts.len(),
        plan.peak_working_set_bytes(&build_index(&client)) >> 10,
        (train_set.len() * (2 + spec.dim * 4)) >> 10,
    );

    // Train a real model through the whole stack.
    let loader = DataLoader::new(Arc::new(attach(server, &cache)), 64, 1234);
    let mut model = Mlp::new(
        MlpConfig {
            input_dim: spec.dim,
            hidden: vec![96],
            classes: spec.classes,
            lr: 0.06,
            momentum: 0.9,
        },
        7,
    );
    let metrics =
        train(&mut model, &loader, &eval_set, &TrainConfig { epochs: 10, topk: (1, 5) }).unwrap();
    println!("epoch  loss    top-1   top-5");
    for m in &metrics {
        println!(
            "{:>5}  {:>6.3}  {:>5.1}%  {:>5.1}%",
            m.epoch,
            m.loss,
            m.top1 * 100.0,
            m.topk * 100.0
        );
    }
    let m = cache.metrics();
    println!(
        "cache: {} file reads, {} chunk hits, {} chunk loads from backing store",
        m.file_reads(),
        m.chunk_hits(),
        m.chunk_loads()
    );
    assert!(metrics.last().unwrap().topk > 0.6, "training should learn something");
    println!("distributed training OK");
}

fn attach(
    server: Arc<DieselServer<ShardedKv, MemObjectStore>>,
    cache: &Arc<TaskCache<MemObjectStore>>,
) -> DieselClient<ShardedKv, MemObjectStore> {
    let c = DieselClient::connect(server, "synth-imagenet");
    c.download_meta().unwrap();
    c.enable_shuffle(ShuffleKind::ChunkWise { group_size: 8 });
    c.attach_cache(cache.clone());
    c
}

fn build_index(
    client: &DieselClient<ShardedKv, MemObjectStore>,
) -> diesel_dlt::shuffle::DatasetIndex {
    // Reconstruct the index the client uses internally, for reporting.
    let server = client.server();
    let snap = server.build_snapshot("synth-imagenet").unwrap();
    let mut chunks: Vec<diesel_dlt::shuffle::ChunkFiles> = snap
        .chunks
        .iter()
        .map(|&c| diesel_dlt::shuffle::ChunkFiles { chunk: c, chunk_bytes: 0, files: vec![] })
        .collect();
    for f in &snap.files {
        if let Some(i) = snap.chunks.iter().position(|c| *c == f.meta.chunk) {
            chunks[i].chunk_bytes += f.meta.length;
            chunks[i].files.push(f.path.clone());
        }
    }
    diesel_dlt::shuffle::DatasetIndex::new(chunks)
}
