//! Memory-constrained reading (§4.3): the dataset does not fit in the
//! task-grained cache. Compare the conventional dataset shuffle against
//! DIESEL's chunk-wise shuffle on the *same* cache budget and measure
//! what reaches the backing store.
//!
//! Expected outcome (the Fig. 12 mechanism): under dataset shuffle the
//! cache thrashes — almost every file read triggers a whole-chunk fetch
//! — while under chunk-wise shuffle each chunk is fetched once per epoch
//! and then serves all of its files.
//!
//! ```text
//! cargo run --release --example memory_constrained
//! ```

use std::sync::Arc;

use diesel_dlt::cache::{CacheConfig, CachePolicy, TaskCache, Topology};
use diesel_dlt::core::{ClientConfig, DieselClient, DieselServer};
use diesel_dlt::kv::ShardedKv;
use diesel_dlt::shuffle::ShuffleKind;
use diesel_dlt::store::MemObjectStore;

const FILES: usize = 4000;
const FILE_SIZE: usize = 512;
const CHUNK_SIZE: usize = 16 << 10; // ~31 files per chunk

fn run(kind: ShuffleKind, label: &str) -> (u64, u64) {
    let server =
        Arc::new(DieselServer::new(Arc::new(ShardedKv::new()), Arc::new(MemObjectStore::new())));
    let client = DieselClient::connect_with(
        server.clone(),
        "big",
        ClientConfig {
            chunk: diesel_dlt::chunk::ChunkBuilderConfig {
                target_chunk_size: CHUNK_SIZE,
                ..Default::default()
            },
        },
    )
    .with_deterministic_identity(1, 1, 100);
    for i in 0..FILES {
        client.put(&format!("f{i:05}"), &vec![(i % 251) as u8; FILE_SIZE]).unwrap();
    }
    client.flush().unwrap();
    client.download_meta().unwrap();

    let chunks = server.meta().chunk_ids("big").unwrap();
    let dataset_bytes: u64 = FILES as u64 * FILE_SIZE as u64;
    // Cache budget: ~15% of the dataset across 2 nodes.
    let budget_per_node = dataset_bytes / 13;
    let cache = Arc::new(
        TaskCache::new(
            Topology::uniform(2, 4).unwrap(),
            server.store().clone(),
            "big",
            chunks.clone(),
            CacheConfig { capacity_bytes_per_node: budget_per_node, policy: CachePolicy::OnDemand },
        )
        .unwrap(),
    );
    client.attach_cache(cache.clone());
    client.enable_shuffle(kind);

    // Read two epochs in the generated order.
    for epoch in 0..2u64 {
        for path in client.epoch_file_list(42, epoch).unwrap() {
            client.get(&path).unwrap();
        }
    }
    let m = cache.metrics();
    println!(
        "{label:<28} chunk loads: {:>6}  bytes from store: {:>9} KiB  evictions: {:>6}  (dataset {} KiB, cache budget {} KiB/node)",
        m.chunk_loads(),
        m.bytes_loaded() >> 10,
        m.evictions(),
        dataset_bytes >> 10,
        budget_per_node >> 10,
    );
    (m.chunk_loads(), m.bytes_loaded())
}

fn main() {
    let chunks = FILES.div_ceil(CHUNK_SIZE / (FILE_SIZE + 30));
    println!(
        "dataset: {FILES} files x {FILE_SIZE} B in ~{chunks} chunks; cache holds ~15% of it\n"
    );
    let (full_loads, full_bytes) = run(ShuffleKind::DatasetShuffle, "dataset shuffle (baseline)");
    let (cw_loads, cw_bytes) =
        run(ShuffleKind::ChunkWise { group_size: 4 }, "chunk-wise shuffle (g=4)");
    let amplification = full_bytes as f64 / cw_bytes as f64;
    println!(
        "\nchunk-wise shuffle cut backing-store traffic by {amplification:.1}x \
         ({full_loads} -> {cw_loads} chunk loads over two epochs)."
    );
    assert!(
        cw_loads * 3 < full_loads,
        "chunk-wise shuffle must drastically reduce chunk re-fetches"
    );
    println!("memory-constrained shuffle OK");
}
