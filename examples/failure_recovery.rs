//! Failure recovery walkthrough — the §4.1.2 and §4.2 fault scenarios:
//!
//! 1. a KV instance dies and loses recent metadata → recover by
//!    scanning only the chunks written since a known-good timestamp;
//! 2. the whole in-memory metadata database is lost (power failure) →
//!    rebuild everything from the self-contained chunks, in ID order;
//! 3. a cache node of a DLT task dies → reads for its partition fail
//!    (contained to this task), other nodes keep serving, and recovery
//!    reloads exactly that partition chunk-wise.
//!
//! ```text
//! cargo run --example failure_recovery
//! ```

use std::sync::Arc;

use diesel_dlt::cache::{CacheConfig, CachePolicy, TaskCache, Topology};
use diesel_dlt::core::{ClientConfig, DieselClient, DieselServer};
use diesel_dlt::kv::{ClusterConfig, KvCluster, KvStore};
use diesel_dlt::store::MemObjectStore;

fn main() {
    // A 4-instance KV cluster (the "Redis cluster") and the object store.
    let kv = Arc::new(KvCluster::new(ClusterConfig { instances: 4, shards_per_instance: 16 }));
    let server = Arc::new(DieselServer::new(kv.clone(), Arc::new(MemObjectStore::new())));
    let client = DieselClient::connect_with(
        server.clone(),
        "ds",
        ClientConfig {
            chunk: diesel_dlt::chunk::ChunkBuilderConfig {
                target_chunk_size: 8 << 10,
                ..Default::default()
            },
        },
    )
    .with_deterministic_identity(1, 1, 1_000);

    for i in 0..300 {
        client.put(&format!("cls{}/img{i:04}.bin", i % 6), &vec![(i % 251) as u8; 256]).unwrap();
    }
    client.flush().unwrap();
    let total_keys = kv.len();
    println!("wrote 300 files; KV holds {total_keys} metadata keys across 4 instances");

    // --- scenario (a): one KV instance dies ---------------------------
    kv.fail_instance(2);
    println!("instance 2 down: {} keys still reachable", count_reachable(&server));
    kv.recover_instance(2); // comes back empty
    let lost = total_keys - kv.len();
    println!("instance 2 recovered empty: {lost} keys lost");
    let report = server.recover_metadata_since("ds", 0).unwrap();
    println!(
        "chunk rescan restored metadata: {} chunks scanned, {} files re-registered, KV back to {} keys",
        report.chunks_scanned,
        report.files_recovered,
        kv.len()
    );
    assert!(kv.len() >= total_keys);

    // --- scenario (b): power failure ----------------------------------
    kv.power_loss();
    assert_eq!(kv.len(), 0);
    let report = server.recover_metadata_full("ds").unwrap();
    println!(
        "after power loss: full scan of {} chunks recovered {} files (headers only: {} KiB read)",
        report.chunks_scanned,
        report.files_recovered,
        report.header_bytes >> 10
    );
    client.download_meta().unwrap();
    assert_eq!(client.get("cls3/img0003.bin").unwrap().len(), 256);

    // --- scenario 3: cache node failure (task containment) ------------
    let chunks = server.meta().chunk_ids("ds").unwrap();
    let cache = Arc::new(
        TaskCache::new(
            Topology::uniform(3, 2).unwrap(),
            server.store().clone(),
            "ds",
            chunks,
            CacheConfig { capacity_bytes_per_node: 1 << 30, policy: CachePolicy::Oneshot },
        )
        .unwrap(),
    );
    cache.prefetch_all().unwrap();
    client.attach_cache(cache.clone());

    cache.kill_node(1);
    println!(
        "cache node 1 killed; resident fraction {:.0}% — reads fall back to the server path",
        cache.resident_fraction() * 100.0
    );
    // Every file still readable: the client falls back transparently.
    for i in 0..300 {
        let name = format!("cls{}/img{i:04}.bin", i % 6);
        assert_eq!(client.get(&name).unwrap().len(), 256, "{name}");
    }
    let reloaded = cache.recover_node(1).unwrap();
    println!(
        "node 1 recovered: {} chunks / {} KiB reloaded chunk-wise (its partition only)",
        reloaded.chunks_loaded,
        reloaded.bytes_loaded >> 10
    );
    assert!((cache.resident_fraction() - 1.0).abs() < 1e-9);
    println!("failure recovery OK");
}

fn count_reachable(server: &DieselServer<KvCluster, MemObjectStore>) -> usize {
    (0..300)
        .filter(|i| server.meta().file_meta("ds", &format!("cls{}/img{i:04}.bin", i % 6)).is_ok())
        .count()
}
