//! Elastic cache membership walkthrough — the DESIGN.md §13 scenario:
//!
//! a DLT task's cache scales from 4 nodes to 8 in the middle of an
//! epoch (more aggregate cache memory mid-training), then back down to
//! 4, while the training loop keeps reading. Placement comes from the
//! consistent-hash ring, so each swing relocates only the ring-bounded
//! delta of chunks — and on a warm cluster every relocation is a
//! peer-to-peer handoff: the backing store is never re-read.
//!
//! ```text
//! cargo run --example elastic_membership
//! ```

use std::sync::Arc;

use diesel_dlt::cache::{CacheConfig, CachePolicy, TaskCache, Topology};
use diesel_dlt::core::{ClientConfig, DieselClient, DieselServer};
use diesel_dlt::kv::ShardedKv;
use diesel_dlt::store::MemObjectStore;

fn main() {
    let server =
        Arc::new(DieselServer::new(Arc::new(ShardedKv::new()), Arc::new(MemObjectStore::new())));
    let client = DieselClient::connect_with(
        server.clone(),
        "ds",
        ClientConfig {
            chunk: diesel_dlt::chunk::ChunkBuilderConfig {
                target_chunk_size: 8 << 10,
                ..Default::default()
            },
        },
    )
    .with_deterministic_identity(1, 1, 2_000);

    for i in 0..400 {
        client.put(&format!("cls{}/img{i:04}.bin", i % 8), &vec![(i % 251) as u8; 256]).unwrap();
    }
    client.flush().unwrap();
    client.download_meta().unwrap();

    // A warm 4-node task cache.
    let chunks = server.meta().chunk_ids("ds").unwrap();
    let cache = Arc::new(
        TaskCache::new(
            Topology::uniform(4, 2).unwrap(),
            server.store().clone(),
            "ds",
            chunks.clone(),
            CacheConfig { capacity_bytes_per_node: 1 << 30, policy: CachePolicy::Oneshot },
        )
        .unwrap(),
    );
    cache.prefetch_all().unwrap();
    client.attach_cache(cache.clone());
    let loads_cold = cache.metrics().chunk_loads();
    println!(
        "4-node cache warm: {} chunks prefetched, epoch {}",
        loads_cold,
        cache.membership_epoch()
    );

    let read_all = |tag: &str| {
        for i in 0..400 {
            let name = format!("cls{}/img{i:04}.bin", i % 8);
            assert_eq!(client.get(&name).unwrap().len(), 256, "{name}");
        }
        println!("  {tag}: all 400 files read through the cache");
    };
    read_all("before any resize");

    // --- grow 4 → 8 mid-training --------------------------------------
    let up = cache.resize(8).unwrap();
    println!(
        "grow 4→8 (epoch {}): {}/{} chunks moved, {} peer warm handoffs, {} store fallbacks, {} KiB shipped",
        up.epoch,
        up.chunks_moved,
        chunks.len(),
        up.peer_warm_hits,
        up.store_fallbacks,
        up.bytes_moved >> 10
    );
    assert_eq!(up.store_fallbacks, 0, "a warm cluster rebalances without the store");
    read_all("after grow");

    // --- shrink 8 → 4 --------------------------------------------------
    let down = cache.resize(4).unwrap();
    println!(
        "shrink 8→4 (epoch {}): {} chunks drained from the leavers, {} warm, {} fallbacks",
        down.epoch, down.chunks_moved, down.peer_warm_hits, down.store_fallbacks
    );
    assert_eq!(down.chunks_moved, up.chunks_moved, "the shrink undoes exactly the grow");
    read_all("after shrink");

    // The whole dance never re-read the backing store.
    assert_eq!(
        cache.metrics().chunk_loads(),
        loads_cold,
        "rebalances must be served from peer memory"
    );
    assert!((cache.resident_fraction() - 1.0).abs() < 1e-9);
    println!(
        "membership epoch {} | {} stale-owner retries absorbed | store loads still {}",
        cache.membership_epoch(),
        cache.metrics().stale_owner_retries(),
        cache.metrics().chunk_loads()
    );
    println!("elastic membership OK");
}
