//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no registry access, so this stub keeps the
//! workspace's benches compiling and runnable: `cargo bench` executes
//! each closure `sample_size` times and prints the mean wall time per
//! iteration. There is no statistical analysis, warm-up, or HTML report
//! — the numbers are indicative, not publishable.

use std::fmt::Display;
use std::time::Instant;

/// Measures one benchmark's closure.
pub struct Bencher {
    iters: u64,
    total_ns: u128,
}

impl Bencher {
    /// Run `f` repeatedly, timing each call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        for _ in 0..self.iters {
            let start = Instant::now();
            let out = f();
            self.total_ns += start.elapsed().as_nanos();
            std::hint::black_box(out);
        }
    }
}

fn human_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Benchmark driver; one per `criterion_group!` config.
pub struct Criterion {
    sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Iterations per benchmark (criterion's "samples", flattened).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n as u64;
        self
    }

    fn run_one(&mut self, id: &str, f: &mut dyn FnMut(&mut Bencher)) {
        let mut b = Bencher { iters: self.sample_size, total_ns: 0 };
        f(&mut b);
        let mean = if b.iters == 0 { 0.0 } else { b.total_ns as f64 / b.iters as f64 };
        println!("bench {id:<50} {:>12}/iter ({} iters)", human_ns(mean), b.iters);
    }

    /// Run one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        self.run_one(id, &mut f);
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { parent: self, name: name.to_string() }
    }

    /// Finalize (no-op in the stub).
    pub fn final_summary(&mut self) {}
}

/// Units for reported throughput. Recorded but not currently printed.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// Identifier for a parameterized benchmark: `name/parameter`.
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new<P: Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId { full: format!("{function_name}/{parameter}") }
    }
}

/// A group of benchmarks sharing a name prefix and throughput setting.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Record the per-iteration throughput (stub: ignored).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Run `name` within this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        self.parent.run_one(&full, &mut f);
        self
    }

    /// Run a parameterized benchmark with `input` passed by reference.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.full);
        self.parent.run_one(&full, &mut |b| f(b, input));
        self
    }

    /// End the group (no-op in the stub).
    pub fn finish(self) {}
}

/// Define a benchmark group: either `criterion_group!(name, fn_a, fn_b)`
/// or the long form with `name = ...; config = ...; targets = ...`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c: $crate::Criterion = $config;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bump(c: &mut Criterion) {
        let mut n = 0u64;
        c.bench_function("bump", |b| b.iter(|| n += 1));
        assert!(n > 0);
    }

    #[test]
    fn groups_and_functions_run_their_closures() {
        let mut c = Criterion::default().sample_size(3);
        bump(&mut c);
        let mut ran = 0;
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Bytes(10));
        g.bench_function("f", |b| b.iter(|| ran += 1));
        g.bench_with_input(BenchmarkId::new("p", 4), &4u32, |b, &x| {
            b.iter(|| ran += x as usize)
        });
        g.finish();
        assert!(ran >= 3 + 3 * 4);
    }

    criterion_group!(simple, bump);
    criterion_group!(name = long_form; config = Criterion::default().sample_size(2); targets = bump);

    #[test]
    fn macros_expand_to_runnable_fns() {
        simple();
        long_form();
    }
}
