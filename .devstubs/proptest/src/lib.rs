//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so this workspace
//! vendors the slice of proptest it uses: the `proptest!` macro with an
//! optional `#![proptest_config(...)]` header, `any::<T>()` for
//! primitives, integer ranges as strategies, regex-string strategies
//! (the small subset of regex syntax the tests use), tuples, and
//! `proptest::collection::{vec, btree_map}`.
//!
//! Differences from real proptest, deliberately accepted:
//! - No shrinking: a failing case fails with the generated inputs
//!   reported by the assertion message, but is not minimized.
//! - Deterministic: the RNG seed is derived from the test's module path
//!   and name, so every run explores the same cases. That is a feature
//!   here — the workspace's determinism rule (R2) bans ambient entropy.
//! - `prop_assert!`/`prop_assert_eq!` are plain `assert!`/`assert_eq!`.

use std::marker::PhantomData;

pub mod test_runner {
    //! Test-run configuration (a tiny shadow of proptest's).

    /// How many cases each `proptest!` test runs.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }
}

pub use test_runner::Config as ProptestConfig;

/// Deterministic generator backing all strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator whose stream is a pure function of `seed`.
    pub fn from_seed(seed: u64) -> Self {
        TestRng { state: seed ^ 0x9e37_79b9_7f4a_7c15 }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`; `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    /// Uniform value in `[lo, hi)` as i128 arithmetic (covers all int widths).
    pub fn in_range(&mut self, lo: i128, hi: i128) -> i128 {
        debug_assert!(lo < hi);
        let span = (hi - lo) as u128;
        let raw = ((self.next_u64() as u128) << 64) | self.next_u64() as u128;
        lo + (raw % span) as i128
    }
}

/// Seed helper used by the `proptest!` expansion: FNV-1a over the test name.
#[doc(hidden)]
pub fn __rng_for(test_name: &str) -> TestRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    TestRng::from_seed(h)
}

/// A value generator. Unlike real proptest there is no shrinking tree;
/// `generate` just produces one value.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Types with a canonical "anything" strategy (primitives only).
pub trait Arbitrary: Sized {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*}
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`: `any::<u8>()`, `any::<bool>()`, ...
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                rng.in_range(self.start as i128, self.end as i128) as $t
            }
        }
    )*}
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    }
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);

// ---------------------------------------------------------------------------
// Regex-string strategies: `"[a-z]{1,6}(/[a-z0-9]{1,6}){0,2}"` etc.
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
enum Node {
    Lit(char),
    Class(Vec<(char, char)>),
    Group(Vec<Vec<Piece>>),
}

#[derive(Debug, Clone)]
struct Piece {
    node: Node,
    min: u32,
    max: u32,
}

fn parse_seq(chars: &[char], mut i: usize, stop_at_close: bool) -> (Vec<Vec<Piece>>, usize) {
    let mut alts: Vec<Vec<Piece>> = vec![Vec::new()];
    while i < chars.len() {
        let c = chars[i];
        match c {
            ')' if stop_at_close => return (alts, i),
            '|' => {
                alts.push(Vec::new());
                i += 1;
            }
            '(' => {
                let (inner, end) = parse_seq(chars, i + 1, true);
                assert!(end < chars.len() && chars[end] == ')', "unclosed group in regex strategy");
                i = end + 1;
                let (min, max, ni) = parse_quant(chars, i);
                i = ni;
                alts.last_mut().expect("alts non-empty").push(Piece {
                    node: Node::Group(inner),
                    min,
                    max,
                });
            }
            '[' => {
                let mut ranges = Vec::new();
                i += 1;
                while i < chars.len() && chars[i] != ']' {
                    let lo = if chars[i] == '\\' {
                        i += 1;
                        chars[i]
                    } else {
                        chars[i]
                    };
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        ranges.push((lo, chars[i + 2]));
                        i += 3;
                    } else {
                        ranges.push((lo, lo));
                        i += 1;
                    }
                }
                assert!(i < chars.len(), "unclosed class in regex strategy");
                i += 1; // skip ']'
                let (min, max, ni) = parse_quant(chars, i);
                i = ni;
                alts.last_mut().expect("alts non-empty").push(Piece {
                    node: Node::Class(ranges),
                    min,
                    max,
                });
            }
            _ => {
                let lit = if c == '\\' {
                    i += 1;
                    assert!(i < chars.len(), "dangling escape in regex strategy");
                    chars[i]
                } else {
                    c
                };
                i += 1;
                let (min, max, ni) = parse_quant(chars, i);
                i = ni;
                alts.last_mut().expect("alts non-empty").push(Piece {
                    node: Node::Lit(lit),
                    min,
                    max,
                });
            }
        }
    }
    (alts, i)
}

fn parse_quant(chars: &[char], i: usize) -> (u32, u32, usize) {
    if i >= chars.len() {
        return (1, 1, i);
    }
    match chars[i] {
        '?' => (0, 1, i + 1),
        '*' => (0, 8, i + 1),
        '+' => (1, 8, i + 1),
        '{' => {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .map(|p| p + i)
                .expect("unclosed {} quantifier in regex strategy");
            let body: String = chars[i + 1..close].iter().collect();
            let (min, max) = match body.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse().expect("bad quantifier"),
                    hi.trim().parse().expect("bad quantifier"),
                ),
                None => {
                    let n = body.trim().parse().expect("bad quantifier");
                    (n, n)
                }
            };
            (min, max, close + 1)
        }
        _ => (1, 1, i),
    }
}

fn gen_alts(alts: &[Vec<Piece>], rng: &mut TestRng, out: &mut String) {
    let pick = rng.below(alts.len() as u64) as usize;
    for piece in &alts[pick] {
        let reps = piece.min + rng.below((piece.max - piece.min + 1) as u64) as u32;
        for _ in 0..reps {
            match &piece.node {
                Node::Lit(c) => out.push(*c),
                Node::Class(ranges) => {
                    let total: u64 = ranges.iter().map(|(a, b)| *b as u64 - *a as u64 + 1).sum();
                    let mut k = rng.below(total);
                    for (a, b) in ranges {
                        let span = *b as u64 - *a as u64 + 1;
                        if k < span {
                            out.push(char::from_u32(*a as u32 + k as u32).expect("class range"));
                            break;
                        }
                        k -= span;
                    }
                }
                Node::Group(inner) => gen_alts(inner, rng, out),
            }
        }
    }
}

impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let chars: Vec<char> = self.chars().collect();
        let (alts, end) = parse_seq(&chars, 0, false);
        debug_assert_eq!(end, chars.len());
        let mut out = String::new();
        gen_alts(&alts, rng, &mut out);
        out
    }
}

pub mod collection {
    //! Collection strategies: `vec` and `btree_map`.
    use super::{Strategy, TestRng};
    use std::collections::BTreeMap;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    /// A vector of values from `elem`, with length in `size`.
    pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = rng.in_range(self.size.start as i128, self.size.end as i128) as usize;
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeMap<K::Value, V::Value>`.
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        val: V,
        size: Range<usize>,
    }

    /// A map with roughly `size` entries (possibly fewer when the key
    /// strategy's space is too small to supply distinct keys).
    pub fn btree_map<K, V>(key: K, val: V, size: Range<usize>) -> BTreeMapStrategy<K, V>
    where
        K: Strategy,
        V: Strategy,
        K::Value: Ord,
    {
        BTreeMapStrategy { key, val, size }
    }

    impl<K, V> Strategy for BTreeMapStrategy<K, V>
    where
        K: Strategy,
        V: Strategy,
        K::Value: Ord,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = rng.in_range(self.size.start as i128, self.size.end as i128) as usize;
            let mut map = BTreeMap::new();
            let mut tries = 0usize;
            while map.len() < n && tries < n * 10 + 100 {
                map.insert(self.key.generate(rng), self.val.generate(rng));
                tries += 1;
            }
            map
        }
    }
}

pub mod prelude {
    //! Common imports, mirroring `proptest::prelude`.
    pub use crate::{any, prop_assert, prop_assert_eq, proptest};
    pub use crate::{Arbitrary, ProptestConfig, Strategy};
}

/// Assert inside a `proptest!` body (no shrinking, so this is `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Equality assert inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a test running `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::__rng_for(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__cfg.cases {
                let _ = __case;
                $(let $arg = $crate::Strategy::generate(&$strat, &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn regex_subset_generates_matching_strings() {
        let mut rng = crate::__rng_for("regex");
        for _ in 0..200 {
            let s = Strategy::generate(&"[a-c]{1,4}", &mut rng);
            assert!((1..=4).contains(&s.len()), "{s:?}");
            assert!(s.chars().all(|c| ('a'..='c').contains(&c)), "{s:?}");

            let p = Strategy::generate(&"[a-z]{1,6}(/[a-z0-9]{1,6}){0,2}", &mut rng);
            for (i, seg) in p.split('/').enumerate() {
                assert!(!seg.is_empty() && seg.len() <= 6, "{p:?}");
                if i == 0 {
                    assert!(seg.chars().all(|c| c.is_ascii_lowercase()), "{p:?}");
                } else {
                    assert!(seg.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()));
                }
            }
            assert!(p.split('/').count() <= 3, "{p:?}");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn macro_generates_and_loops(
            x in 0usize..10,
            v in crate::collection::vec(any::<u8>(), 0..5),
            (a, b) in (any::<bool>(), 1u32..3),
        ) {
            prop_assert!(x < 10);
            prop_assert!(v.len() < 5);
            prop_assert_eq!(a, a);
            prop_assert!((1..3).contains(&b));
        }
    }

    proptest! {
        #[test]
        fn btree_map_respects_value_strategy(
            m in crate::collection::btree_map("[a-z]{1,8}", 5u8..7, 0..20),
        ) {
            for (k, v) in &m {
                prop_assert!(!k.is_empty() && *k.as_bytes().first().unwrap() >= b'a');
                prop_assert!((5..7).contains(v));
            }
        }
    }
}
