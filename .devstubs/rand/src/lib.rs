//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no registry access, so this workspace
//! vendors the slice of `rand` it actually uses: `StdRng` seeded via
//! `seed_from_u64`, `Rng::{gen, gen_range, gen_bool}`, and
//! `seq::SliceRandom::shuffle`. The generator is xoshiro256++ seeded
//! through SplitMix64 — deterministic for a given seed, statistically
//! solid for tests and simulations, and explicitly *not* intended for
//! cryptography (neither is the code that calls it).
//!
//! There is no `thread_rng`/`from_entropy` here on purpose: every RNG in
//! this tree must be constructed from an explicit seed (determinism rule
//! R2; see DESIGN.md "Static invariants").

use std::ops::{Range, RangeInclusive};

/// Core source of randomness: a stream of `u64`s.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits (upper half of [`next_u64`](Self::next_u64)).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction from an explicit seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose whole stream is a function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from a generator's raw bits (the `rand`
/// `Standard` distribution, collapsed onto the types this tree uses).
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*}
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 explicit mantissa bits -> uniform in [0, 1).
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = <u128 as Standard>::sample(rng) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = <u128 as Standard>::sample(rng) % span;
                (start as i128 + v as i128) as $t
            }
        }
    )*}
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let unit = <$t as Standard>::sample(rng);
                self.start + unit * (self.end - self.start)
            }
        }
    )*}
}
impl_range_float!(f32, f64);

/// Convenience sampling methods, auto-implemented for every generator.
pub trait Rng: RngCore {
    /// A uniform value of `T` (the `Standard` distribution).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniform value in `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p not a probability");
        <f64 as Standard>::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

pub mod rngs {
    //! Concrete generators.
    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ (Blackman &
    /// Vigna), state expanded from the seed with SplitMix64.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence-related helpers.
    use super::Rng;

    /// Slice extensions: in-place Fisher–Yates shuffle.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Shuffle the slice uniformly in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

pub mod prelude {
    //! Common imports, mirroring `rand::prelude`.
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn unit_floats_stay_in_range() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let f: f32 = r.gen();
            assert!((0.0..1.0).contains(&f));
            let d: f64 = r.gen();
            assert!((0.0..1.0).contains(&d));
        }
    }

    #[test]
    fn gen_range_hits_every_bucket() {
        let mut r = StdRng::seed_from_u64(2);
        let mut seen = [false; 8];
        for _ in 0..500 {
            seen[r.gen_range(0..8usize)] = true;
        }
        assert!(seen.iter().all(|&b| b));
        for _ in 0..100 {
            let v = r.gen_range(-5i64..5);
            assert!((-5..5).contains(&v));
            let f = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits={hits}");
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_seeded_permutation() {
        let mut v: Vec<u32> = (0..100).collect();
        let mut w = v.clone();
        v.shuffle(&mut StdRng::seed_from_u64(9));
        w.shuffle(&mut StdRng::seed_from_u64(9));
        assert_eq!(v, w);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "seed 9 should not produce identity");
    }
}
