#!/usr/bin/env bash
# CI gate: tier-1 verification (ROADMAP.md) + formatting + lints.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: build =="
cargo build --release

echo "== tier-1: tests =="
cargo test -q

echo "== lockdep: full suite under DIESEL_LOCKDEP=fail =="
# The lock-order witness (DESIGN.md §12) panics on the first acquisition
# that closes a cycle in the lock-order graph, so any ABBA inversion
# introduced anywhere in the tree is a deterministic red build here —
# not a flaky timeout in production.
DIESEL_LOCKDEP=fail cargo test -q --workspace

echo "== determinism: inline executor (DIESEL_EXEC_WORKERS=1) =="
# The concurrency contract (DESIGN.md §9): worker count is a performance
# knob, never a behaviour knob. Run the suite fully inline…
DIESEL_EXEC_WORKERS=1 cargo test -q --test determinism

echo "== determinism: multi-worker stress (DIESEL_EXEC_WORKERS=8) =="
# …and under real scheduling pressure; both must yield identical bytes.
DIESEL_EXEC_WORKERS=8 cargo test -q --test determinism

echo "== elastic membership: mid-epoch 4→8→4 under lockdep =="
# The elastic-membership scenario (DESIGN.md §13): a warm cache grows
# and shrinks mid-epoch while training reads stream through it. Run it
# with the lock-order witness armed, inline and under scheduling
# pressure — batches must stay byte-identical to a static run and the
# rebalance must never deadlock against concurrent reads.
DIESEL_LOCKDEP=fail DIESEL_EXEC_WORKERS=1 \
    cargo test -q --test determinism mid_epoch_resize_keeps_batches_byte_identical
DIESEL_LOCKDEP=fail DIESEL_EXEC_WORKERS=8 \
    cargo test -q --test determinism mid_epoch_resize_keeps_batches_byte_identical

echo "== multi-tenant: isolation + determinism under lockdep =="
# The multi-tenant plane (DESIGN.md §14): two tenants over one shared
# TenantCacheMap. Tenant A's nodes die and its backing chunks are
# corrupted mid-epoch; tenant B's batches must stay byte-identical and
# its residency untouched — inline and under scheduling pressure, with
# the lock-order witness armed (tenant map + DRR lanes are ranked locks).
DIESEL_LOCKDEP=fail DIESEL_EXEC_WORKERS=1 \
    cargo test -q --test determinism two_tenant_epochs_are_byte_identical_across_worker_counts
DIESEL_LOCKDEP=fail DIESEL_EXEC_WORKERS=8 \
    cargo test -q --test determinism two_tenant_epochs_are_byte_identical_across_worker_counts
DIESEL_LOCKDEP=fail \
    cargo test -q --test fault_tolerance tenant_a_corruption_leaves_tenant_b_byte_identical

echo "== tracing: determinism =="
# Trace export obeys the same replayability contract as the data path:
# two identical MockClock'd single-worker runs → byte-identical JSON.
cargo test -q --test determinism traced_epochs_export_byte_identical_chrome_json

echo "== tracing: traced-epoch smoke =="
# One fully traced epoch through channel+cache+server+store; the bench
# itself asserts the JSON parses and at least one client read span has
# a server.handle descendant, exiting nonzero otherwise.
trace_out="$(mktemp /tmp/diesel-trace.XXXXXX.json)"
cargo run -q --release -p diesel-bench --bin loader_pipeline -- --trace "$trace_out"
rm -f "$trace_out"

echo "== telemetry plane: deterministic recorder + SLO under lockdep =="
# The §15 acceptance scenario, with the lock-order witness armed: two
# MockClock'd multi-tenant replays must produce byte-identical flight
# recordings, the induced overload must emit the exact breach→recover
# event sequence, and ServerRequest::Scrape must round-trip through the
# Prometheus parser — all deterministic, so any diff is a real bug.
DIESEL_LOCKDEP=fail cargo test -q --test telemetry

echo "== bench gates (payload + elastic + mixed tenants + obs plane) =="
# Perf ratchets (DESIGN.md §11, §13, §14, §15): rerun the fixed suites
# and fail if any key drifts past tolerance× the recorded baselines in
# BENCH_6.json (zero-copy payload plane), BENCH_8.json (ring lookup,
# 4→8→4 rebalance wall time, store read amplification), BENCH_9.json
# (multi-tenant isolation: light-tenant slowdown under a 10× neighbour,
# fairness ratio, simulated KV QPS ceiling) and BENCH_10.json (telemetry
# plane: recorder tick / Prometheus render / SLO eval cost, plus the
# hard <=5% hot-path overhead and SLO-health contracts asserted inside
# the suite itself). The tolerance is wide because CI machines are
# noisy; the point is catching accidental copies and store re-reads
# (2×+ jumps), not 5% jitter.
scripts/bench.sh --check --tolerance 2.5

# obs_plane archives the deterministic scenario's Prometheus scrape and
# already re-parsed it; keep the artifact honest here too.
test -s results/scrape.prom || { echo "missing results/scrape.prom"; exit 1; }

echo "== rustfmt =="
cargo fmt --check

echo "== clippy =="
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "== rustdoc =="
# Public docs must build warning-free (broken intra-doc links, missing
# docs on public items, etc. are errors).
RUSTDOCFLAGS="-D warnings" cargo doc -q --offline --workspace --no-deps

echo "== diesel-lint =="
# Fails on any non-baselined R1–R6 finding; --baseline-check enforces the
# ratchet (lint-baseline.txt may only ever shrink). The full unfiltered
# report is kept as a build artifact for dashboards and archaeology.
mkdir -p results
# The artifact run exits 1 whenever any (baselined) finding exists; only
# the ratchet below gates.
cargo run -q -p diesel-lint --offline -- --workspace --json > results/lint-report.json || true
cargo run -q -p diesel-lint --offline -- --workspace --baseline lint-baseline.txt --baseline-check

echo "CI gate passed."
