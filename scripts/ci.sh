#!/usr/bin/env bash
# CI gate: tier-1 verification (ROADMAP.md) + formatting + lints.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: build =="
cargo build --release

echo "== tier-1: tests =="
cargo test -q

echo "== determinism: inline executor (DIESEL_EXEC_WORKERS=1) =="
# The concurrency contract (DESIGN.md §9): worker count is a performance
# knob, never a behaviour knob. Run the suite fully inline…
DIESEL_EXEC_WORKERS=1 cargo test -q --test determinism

echo "== determinism: multi-worker stress (DIESEL_EXEC_WORKERS=8) =="
# …and under real scheduling pressure; both must yield identical bytes.
DIESEL_EXEC_WORKERS=8 cargo test -q --test determinism

echo "== rustfmt =="
cargo fmt --check

echo "== clippy =="
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "== rustdoc =="
# Public docs must build warning-free (broken intra-doc links, missing
# docs on public items, etc. are errors).
RUSTDOCFLAGS="-D warnings" cargo doc -q --offline --workspace --no-deps

echo "== diesel-lint =="
# Fails on any non-baselined R1–R4 finding; --baseline-check enforces the
# ratchet (lint-baseline.txt may only ever shrink).
cargo run -q -p diesel-lint --offline -- --workspace --baseline lint-baseline.txt --baseline-check

echo "CI gate passed."
