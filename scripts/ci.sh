#!/usr/bin/env bash
# CI gate: tier-1 verification (ROADMAP.md) + formatting + lints.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: build =="
cargo build --release

echo "== tier-1: tests =="
cargo test -q

echo "== rustfmt =="
cargo fmt --check

echo "== clippy =="
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "CI gate passed."
