#!/usr/bin/env bash
# Payload-plane benchmark gate (DESIGN.md §11).
#
# Builds and runs the fixed `payload_bench` suite against BENCH_6.json:
# the first ever run seeds the `baseline` section (kept verbatim
# forever); every later run rewrites `current`. Pass `--check` to fail
# if any wall-time key regresses past `--tolerance`× baseline — this is
# how scripts/ci.sh ratchets the zero-copy read path.
#
# Usage:
#   scripts/bench.sh                     # refresh `current` in BENCH_6.json
#   scripts/bench.sh --check             # also enforce the regression gate
#   scripts/bench.sh --check --tolerance 2.5
#   scripts/bench.sh --json OTHER.json   # write somewhere else
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build -q --release -p diesel-bench --bin payload_bench
exec target/release/payload_bench "$@"
