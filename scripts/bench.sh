#!/usr/bin/env bash
# Benchmark gates (DESIGN.md §11, §13).
#
# Runs the fixed bench suites against their JSON ledgers:
#   payload_bench -> BENCH_6.json  (zero-copy payload plane)
#   elastic_bench -> BENCH_8.json  (ring lookup + 4→8→4 rebalance +
#                                   store read amplification)
#   mixed_tenants -> BENCH_9.json  (multi-tenant isolation: slowdown
#                                   under a skewed neighbour, fairness,
#                                   simulated KV QPS ceiling)
#   obs_plane     -> BENCH_10.json (telemetry plane: recorder tick /
#                                   Prometheus render / SLO eval cost,
#                                   <=5% hot-path overhead contract,
#                                   deterministic SLO health scenario;
#                                   also archives results/scrape.prom)
# The first ever run of each suite seeds its `baseline` section (kept
# verbatim forever); every later run rewrites `current`. Pass `--check`
# to fail if any key regresses past `--tolerance`× baseline — this is
# how scripts/ci.sh ratchets both planes.
#
# Usage:
#   scripts/bench.sh                     # refresh `current` in both ledgers
#   scripts/bench.sh --check             # also enforce the regression gates
#   scripts/bench.sh --check --tolerance 2.5
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build -q --release -p diesel-bench \
  --bin payload_bench --bin elastic_bench --bin mixed_tenants --bin obs_plane
target/release/payload_bench "$@"
target/release/elastic_bench "$@"
target/release/mixed_tenants "$@"
target/release/obs_plane "$@"
