//! # diesel-dlt — a Rust reproduction of DIESEL (ICPP 2020)
//!
//! DIESEL is a dataset-based distributed storage and caching system for
//! large-scale deep-learning training (Wang et al., ICPP 2020). This
//! workspace rebuilds the full system and its evaluation:
//!
//! * self-contained ≥ 4 MB data chunks with time-sortable IDs
//!   ([`chunk`]),
//! * a distributed key-value metadata store with Redis-style slot
//!   routing ([`kv`]) and the metadata service + per-dataset snapshots
//!   on top ([`meta`]),
//! * shared object storage with calibrated device models ([`store`]),
//! * the task-grained distributed cache ([`cache`]),
//! * a typed RPC layer with timeouts, retries, fault injection and
//!   per-endpoint stats, carrying all inter-node traffic ([`net`]),
//! * a lock-light metrics registry + structured event ring that every
//!   serving layer reports into ([`obs`]),
//! * a work-pool/pipeline executor behind every background thread in
//!   the tree, with a deterministic inline mode ([`exec`]),
//! * the chunk-wise shuffle ([`shuffle`]),
//! * the DIESEL server + libDIESEL client + FUSE facade ([`core`]),
//! * baselines (Lustre-like FS, Memcached cluster) ([`baselines`]),
//! * a mini training stack for the accuracy experiments ([`train`]),
//! * and a deterministic cluster simulator ([`simnet`]).
//!
//! ## Quickstart
//!
//! ```
//! use std::sync::Arc;
//! use diesel_dlt::core::{DieselClient, DieselServer};
//! use diesel_dlt::kv::ShardedKv;
//! use diesel_dlt::store::MemObjectStore;
//!
//! // Deploy a server over a KV store and an object store.
//! let server = Arc::new(DieselServer::new(
//!     Arc::new(ShardedKv::new()),
//!     Arc::new(MemObjectStore::new()),
//! ));
//!
//! // Connect a client (DL_connect), write files (DL_put + DL_flush).
//! let client = DieselClient::connect(server, "my-dataset");
//! client.put("train/cat/1.jpg", b"...jpeg bytes...").unwrap();
//! client.put("train/dog/2.jpg", b"...jpeg bytes...").unwrap();
//! client.flush().unwrap();
//!
//! // Load the metadata snapshot and read (DL_get / DL_stat / DL_ls).
//! client.download_meta().unwrap();
//! assert_eq!(client.stat("train/cat/1.jpg").unwrap().length, 16);
//! assert_eq!(client.ls("train").unwrap().len(), 2);
//! assert_eq!(&client.get("train/dog/2.jpg").unwrap()[..], b"...jpeg bytes...");
//! ```
//!
//! See `examples/` for end-to-end scenarios (distributed training,
//! failure recovery, memory-constrained shuffle) and `crates/bench` for
//! the per-table/figure experiment harness.

pub use diesel_baselines as baselines;
pub use diesel_cache as cache;
pub use diesel_chunk as chunk;
pub use diesel_core as core;
pub use diesel_exec as exec;
pub use diesel_kv as kv;
pub use diesel_meta as meta;
pub use diesel_net as net;
pub use diesel_obs as obs;
pub use diesel_shuffle as shuffle;
pub use diesel_simnet as simnet;
pub use diesel_store as store;
pub use diesel_train as train;
